// PSF — Pattern Specification Framework
// Calibration of the virtual-time cost model.
//
// The paper reports *relative* device performance per application (Table II:
// the "perfect" CPU+kGPU speedup is 1 + k * r where r is the measured
// GPU / 12-core-CPU ratio). We calibrate device throughputs from those
// published ratios; everything downstream (scaling curves, actual-vs-perfect
// gaps, overlap benefits) is an emergent output of the simulated schedule.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "timemodel/link.h"

namespace psf::timemodel {

/// Throughput calibration for one application kernel.
struct AppRates {
  /// Work units (points / edges / grid elements) per second on ONE CPU core.
  double cpu_core_units_per_s = 1.0e7;
  /// Ratio of one GPU to the full 12-core CPU device (paper Table II).
  double gpu_vs_cpu12 = 2.0;
  /// Ratio of one MIC coprocessor to the full 12-core CPU device (the
  /// paper's future-work extension; Knights-Corner-era estimates).
  double mic_vs_cpu12 = 1.3;
  /// Bytes of input streamed to the GPU per work unit (drives PCIe cost for
  /// the single-pass generalized reductions).
  double bytes_per_unit = 0.0;

  /// Units/s of the whole multi-core CPU device.
  [[nodiscard]] double cpu_device_units_per_s(double cores,
                                              double parallel_eff) const {
    return cpu_core_units_per_s * cores * parallel_eff;
  }
  /// Units/s of one GPU device, relative to a 12-core CPU.
  [[nodiscard]] double gpu_device_units_per_s(double parallel_eff) const {
    return cpu_core_units_per_s * 12.0 * parallel_eff * gpu_vs_cpu12;
  }
  /// Units/s of one MIC device, relative to a 12-core CPU.
  [[nodiscard]] double mic_device_units_per_s(double parallel_eff) const {
    return cpu_core_units_per_s * 12.0 * parallel_eff * mic_vs_cpu12;
  }
};

/// Fixed per-operation overheads of the runtime, in seconds.
struct Overheads {
  double chunk_acquire_s = 2.0e-6;   ///< dynamic-scheduler lock per chunk
  double kernel_launch_s = 8.0e-6;   ///< GPU kernel launch
  double thread_fork_s = 4.0e-6;     ///< waking the CPU worker team
  double mpi_call_s = 5.0e-7;        ///< posting a send/recv
};

/// Description of the simulated testbed (paper Section IV: 32 nodes, each a
/// 12-core Xeon 5650 + 2 NVIDIA M2070).
struct ClusterPreset {
  int num_nodes = 32;
  int cpu_cores_per_node = 12;
  int gpus_per_node = 2;
  /// MIC coprocessors per node (0 on the paper's testbed; the extension
  /// benches use 2).
  int mics_per_node = 0;
  /// Multi-thread scaling efficiency of the CPU device (12 cores behave like
  /// ~11 independent cores).
  double cpu_parallel_eff = 11.0 / 12.0;
  LinkModel network = LinkModel::infiniband();
  LinkModel pcie = LinkModel::pcie();
  LinkModel peer = LinkModel::pcie_peer();
  Overheads overheads;
};

/// Per-application calibration presets. `app` is one of
/// "kmeans", "moldyn", "minimd", "sobel", "heat3d"; unknown names fall back
/// to a generic profile.
AppRates app_rates(std::string_view app);

/// The default simulated testbed.
ClusterPreset testbed_preset();

}  // namespace psf::timemodel
