#include "analysis/analysis.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "analysis/json.h"

namespace psf::analysis {

namespace {

/// %.17g — shortest representation that round-trips doubles exactly,
/// matching the convention of the metrics and trace writers.
void append_double(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

std::string format_double(double value) {
  std::string out;
  append_double(out, value);
  return out;
}

void append_json_string(std::string& out, const std::string& text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Value-based ordering key: recording order and id assignment vary with
/// the executor width, span values do not.
auto canonical_key(const timemodel::TraceSpan& span) {
  return std::tie(span.rank, span.lane, span.begin, span.end, span.name,
                  span.category);
}

/// Merged busy intervals of a sorted-by-begin span sequence.
std::vector<std::pair<double, double>> merge_intervals(
    std::vector<const timemodel::TraceSpan*> spans) {
  // Canonical order sorts by (rank, lane, begin, ...), so multi-lane
  // collections are not begin-sorted; the sweep below requires it.
  std::sort(spans.begin(), spans.end(),
            [](const timemodel::TraceSpan* a, const timemodel::TraceSpan* b) {
              return a->begin < b->begin ||
                     (a->begin == b->begin && a->end < b->end);
            });
  std::vector<std::pair<double, double>> merged;
  for (const auto* span : spans) {
    if (span->end <= span->begin) continue;  // points add no busy time
    if (!merged.empty() && span->begin <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, span->end);
    } else {
      merged.emplace_back(span->begin, span->end);
    }
  }
  return merged;
}

}  // namespace

// --- TraceGraph -------------------------------------------------------------

void TraceGraph::canonicalize(std::vector<timemodel::TraceSpan> spans,
                              std::vector<timemodel::TraceEdge> edges) {
  spans_ = std::move(spans);
  std::stable_sort(spans_.begin(), spans_.end(),
                   [](const timemodel::TraceSpan& a,
                      const timemodel::TraceSpan& b) {
                     return canonical_key(a) < canonical_key(b);
                   });
  std::map<std::uint64_t, std::size_t> index_of;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    index_of.emplace(spans_[i].id, i);
  }
  edges_.clear();
  edges_.reserve(edges.size());
  for (const auto& edge : edges) {
    const auto from = index_of.find(edge.from);
    const auto to = index_of.find(edge.to);
    if (from == index_of.end() || to == index_of.end()) continue;
    edges_.push_back({from->second, to->second, edge.kind});
  }
  std::sort(edges_.begin(), edges_.end(),
            [](const GraphEdge& a, const GraphEdge& b) {
              return std::tie(a.from, a.to, a.kind) <
                     std::tie(b.from, b.to, b.kind);
            });
}

TraceGraph TraceGraph::from_recorder(
    const timemodel::TraceRecorder& recorder) {
  TraceGraph graph;
  graph.process_names_ = recorder.process_names();
  graph.lane_names_ = recorder.lane_names();
  graph.canonicalize(recorder.spans(), recorder.edges());
  return graph;
}

support::StatusOr<TraceGraph> TraceGraph::from_chrome_json(
    const std::string& text) {
  auto parsed = parse_json(text);
  if (!parsed.is_ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return support::Status::invalid_argument(
        "not a Chrome trace: missing traceEvents array");
  }

  TraceGraph graph;
  std::vector<timemodel::TraceSpan> spans;
  for (const JsonValue& event : events->as_array()) {
    if (!event.is_object()) continue;
    const std::string phase = event.string_or("ph", "");
    const int rank = static_cast<int>(event.number_or("pid", 0));
    const int lane = static_cast<int>(event.number_or("tid", 0));
    const JsonValue* args = event.find("args");
    if (phase == "M") {
      if (args == nullptr) continue;
      const std::string name = args->string_or("name", "");
      const std::string which = event.string_or("name", "");
      if (which == "process_name") {
        graph.process_names_[rank] = name;
      } else if (which == "thread_name") {
        graph.lane_names_[{rank, lane}] = name;
      }
      continue;
    }
    if (phase != "X") continue;
    timemodel::TraceSpan span;
    span.name = event.string_or("name", "");
    span.category = event.string_or("cat", "");
    span.rank = rank;
    span.lane = lane;
    if (args != nullptr) {
      // Exact virtual times ride in args; the microsecond ts/dur fields
      // exist only for trace viewers.
      span.id = static_cast<std::uint64_t>(args->number_or("id", 0));
      span.begin = args->number_or("begin", 0.0);
      span.end = args->number_or("end", span.begin);
    }
    spans.push_back(std::move(span));
  }

  std::vector<timemodel::TraceEdge> edges;
  if (const JsonValue* psf_edges = root.find("psfEdges");
      psf_edges != nullptr && psf_edges->is_array()) {
    for (const JsonValue& edge : psf_edges->as_array()) {
      if (!edge.is_object()) continue;
      edges.push_back(
          {static_cast<std::uint64_t>(edge.number_or("from", 0)),
           static_cast<std::uint64_t>(edge.number_or("to", 0)),
           edge.string_or("kind", "")});
    }
  }
  graph.canonicalize(std::move(spans), std::move(edges));
  return graph;
}

support::StatusOr<TraceGraph> TraceGraph::from_chrome_json_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return support::Status::invalid_argument("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_chrome_json(buffer.str());
}

std::string TraceGraph::lane_label(int rank, int lane) const {
  const auto it = lane_names_.find({rank, lane});
  if (it != lane_names_.end()) return it->second;
  return "lane" + std::to_string(lane);
}

double TraceGraph::makespan() const {
  double maximum = 0.0;
  for (const auto& span : spans_) maximum = std::max(maximum, span.end);
  return maximum;
}

// --- analysis engine --------------------------------------------------------

namespace {

/// Predecessor candidates of every span: explicit edge sources plus the
/// structural same-rank predecessor (the latest span of the rank ending at
/// or before this one begins — lane ordering and fork/join merges both
/// reduce to it). All lookups are over canonical indices.
class PredecessorIndex {
 public:
  explicit PredecessorIndex(const TraceGraph& graph) : graph_(&graph) {
    const auto& spans = graph.spans();
    edge_preds_.resize(spans.size());
    for (const auto& edge : graph.edges()) {
      edge_preds_[edge.to].push_back(
          {edge.from, edge.kind == "message"});
    }
    for (std::size_t i = 0; i < spans.size(); ++i) {
      by_rank_[spans[i].rank].push_back(i);
    }
    // Canonical order within a rank is (lane, begin, ...); re-sort by end
    // so the latest-ending predecessor is a binary search away.
    for (auto& [rank, indices] : by_rank_) {
      std::sort(indices.begin(), indices.end(),
                [&spans](std::size_t a, std::size_t b) {
                  return std::tie(spans[a].end, a) <
                         std::tie(spans[b].end, b);
                });
    }
  }

  struct EdgePred {
    std::size_t from = 0;
    bool is_message = false;
  };

  [[nodiscard]] const std::vector<EdgePred>& edge_preds(
      std::size_t span) const {
    return edge_preds_[span];
  }

  /// Structural predecessor: the same-rank span with the greatest end not
  /// exceeding `spans[span].begin` (ties broken towards the smallest
  /// canonical index — a value-based rule). A candidate that could equally
  /// claim `span` as ITS structural predecessor (mutual zero-duration
  /// relation) is only accepted when it precedes `span` canonically, so the
  /// relation stays acyclic. Returns false when the rank has none.
  [[nodiscard]] bool structural_pred(std::size_t span,
                                     std::size_t& pred) const {
    const auto& spans = graph_->spans();
    const auto it = by_rank_.find(spans[span].rank);
    if (it == by_rank_.end()) return false;
    const auto& indices = it->second;
    const double begin = spans[span].begin;
    // Partition point: first index whose end exceeds `begin`.
    auto block_end = std::partition_point(
        indices.begin(), indices.end(), [&spans, begin](std::size_t i) {
          return spans[i].end <= begin;
        });
    bool found = false;
    while (block_end != indices.begin() && !found) {
      // Scan one equal-end block (descending end across blocks).
      const double top = spans[*(block_end - 1)].end;
      auto block_begin = block_end;
      while (block_begin != indices.begin() &&
             spans[*(block_begin - 1)].end == top) {
        --block_begin;
      }
      for (auto i = block_begin; i != block_end; ++i) {
        const std::size_t candidate = *i;
        if (candidate == span) continue;
        if (!(spans[span].end > spans[candidate].begin ||
              candidate < span)) {
          continue;  // would form a mutual relation; let the twin win
        }
        if (!found || candidate < pred) {
          pred = candidate;
          found = true;
        }
      }
      block_end = block_begin;
    }
    return found;
  }

 private:
  const TraceGraph* graph_;
  std::vector<std::vector<EdgePred>> edge_preds_;
  std::map<int, std::vector<std::size_t>> by_rank_;
};

CriticalPath extract_critical_path(const TraceGraph& graph,
                                   const PredecessorIndex& preds) {
  CriticalPath path;
  const auto& spans = graph.spans();
  path.total = graph.makespan();
  if (spans.empty()) return path;

  // Start from the latest-ending span (ties: first in canonical order).
  std::size_t current = 0;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].end > spans[current].end) current = i;
  }

  std::vector<CriticalSegment> reversed;
  std::set<std::size_t> visited;
  double cursor = spans[current].end;
  while (visited.insert(current).second) {
    const auto& span = spans[current];

    // Binding predecessor: the candidate with the greatest end — it is the
    // operation this span actually waited for last. Ties: smallest
    // canonical index (a value-based rule, stable across executor widths).
    bool have_pred = false;
    std::size_t best = 0;
    const auto consider = [&](std::size_t candidate) {
      if (!have_pred || spans[candidate].end > spans[best].end ||
          (spans[candidate].end == spans[best].end && candidate < best)) {
        best = candidate;
        have_pred = true;
      }
    };
    for (const auto& edge : preds.edge_preds(current)) consider(edge.from);
    if (std::size_t structural = 0;
        preds.structural_pred(current, structural)) {
      consider(structural);
    }

    const double handoff =
        have_pred ? std::max(span.begin, spans[best].end) : span.begin;
    const double segment_begin = std::min(cursor, handoff);
    if (segment_begin < cursor) {
      reversed.push_back({current, span.category, span.name, span.rank,
                          span.lane, segment_begin, cursor});
    }
    cursor = segment_begin;
    if (!have_pred) break;
    if (spans[best].end < span.begin) {
      // The rank sat idle between the predecessor finishing and this span
      // starting (untraced local work or a genuine stall).
      reversed.push_back({current, "idle", "", span.rank, span.lane,
                          spans[best].end, span.begin});
      cursor = spans[best].end;
    } else {
      cursor = std::min(cursor, spans[best].end);
    }
    current = best;
  }
  if (cursor > 0.0) {
    reversed.push_back({current, "idle", "", spans[current].rank,
                        spans[current].lane, 0.0, cursor});
  }

  path.segments.assign(reversed.rbegin(), reversed.rend());
  for (const auto& segment : path.segments) {
    path.by_category[segment.category] += segment.end - segment.begin;
  }
  return path;
}

std::vector<LaneUsage> lane_usage(const TraceGraph& graph, double makespan) {
  std::vector<LaneUsage> lanes;
  const auto& spans = graph.spans();
  std::map<std::pair<int, int>, std::vector<const timemodel::TraceSpan*>>
      by_lane;
  for (const auto& span : spans) {
    by_lane[{span.rank, span.lane}].push_back(&span);
  }
  for (const auto& [key, lane_spans] : by_lane) {
    LaneUsage usage;
    usage.rank = key.first;
    usage.lane = key.second;
    usage.name = graph.lane_label(key.first, key.second);
    usage.spans = lane_spans.size();
    const auto merged = merge_intervals(lane_spans);
    for (const auto& [begin, end] : merged) usage.busy += end - begin;
    if (makespan > 0.0) usage.utilization = usage.busy / makespan;
    for (std::size_t i = 1; i < merged.size(); ++i) {
      const double gap = merged[i].first - merged[i - 1].second;
      if (gap <= 0.0) continue;
      ++usage.idle_gaps;
      usage.idle_total += gap;
      usage.idle_max = std::max(usage.idle_max, gap);
    }
    lanes.push_back(std::move(usage));
  }
  return lanes;
}

/// Graph-derived overlap: for every host-lane comm span, how much of its
/// duration is covered by same-rank device-lane compute. For the stencil
/// overlap path this reproduces pattern.st.overlap_efficiency bit-exactly:
/// inner-tile spans share the exchange's begin, so the merged compute
/// interval is [fork, inner_end] and the covered time reduces to
/// min(exchange_end, inner_end) - fork.
std::pair<std::vector<OverlapSpan>, double> overlap_analysis(
    const TraceGraph& graph) {
  const auto& spans = graph.spans();
  std::map<int, std::vector<const timemodel::TraceSpan*>> compute_by_rank;
  for (const auto& span : spans) {
    if (span.category == "compute" && span.lane != 0 &&
        span.lane != timemodel::kNetLane) {
      compute_by_rank[span.rank].push_back(&span);
    }
  }
  std::vector<OverlapSpan> result;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& span = spans[i];
    if (span.category != "comm" || span.lane != 0) continue;
    if (span.end <= span.begin) continue;
    OverlapSpan overlap;
    overlap.span = i;
    overlap.name = span.name;
    overlap.rank = span.rank;
    overlap.begin = span.begin;
    overlap.end = span.end;
    const auto it = compute_by_rank.find(span.rank);
    if (it != compute_by_rank.end()) {
      for (const auto& [lo, hi] : merge_intervals(it->second)) {
        const double covered_begin = std::max(span.begin, lo);
        const double covered_end = std::min(span.end, hi);
        if (covered_end > covered_begin) {
          overlap.overlapped += covered_end - covered_begin;
        }
      }
    }
    overlap.efficiency = overlap.overlapped / (span.end - span.begin);
    result.push_back(std::move(overlap));
  }
  double weighted = 0.0;
  double total = 0.0;
  for (const auto& overlap : result) {
    weighted += overlap.overlapped;
    total += overlap.end - overlap.begin;
  }
  return {std::move(result), total > 0.0 ? weighted / total : 0.0};
}

std::vector<RankImbalance> imbalance_analysis(const TraceGraph& graph) {
  const auto& spans = graph.spans();
  // Per rank, per device lane, compute spans in canonical (begin) order.
  std::map<int, std::map<int, std::vector<const timemodel::TraceSpan*>>>
      by_rank_lane;
  for (const auto& span : spans) {
    if (span.category == "compute" && span.lane != 0 &&
        span.lane != timemodel::kNetLane) {
      by_rank_lane[span.rank][span.lane].push_back(&span);
    }
  }
  std::vector<RankImbalance> result;
  for (const auto& [rank, lanes] : by_rank_lane) {
    RankImbalance imbalance;
    imbalance.rank = rank;
    std::size_t rounds = SIZE_MAX;
    for (const auto& [lane, lane_spans] : lanes) {
      rounds = std::min(rounds, lane_spans.size());
    }
    if (lanes.empty() || rounds == 0 || rounds == SIZE_MAX) continue;
    double sum = 0.0;
    double worst = 0.0;
    std::size_t counted = 0;
    for (std::size_t round = 0; round < rounds; ++round) {
      double max_duration = 0.0;
      double total = 0.0;
      for (const auto& [lane, lane_spans] : lanes) {
        const double duration =
            lane_spans[round]->end - lane_spans[round]->begin;
        max_duration = std::max(max_duration, duration);
        total += duration;
      }
      const double mean = total / static_cast<double>(lanes.size());
      if (mean <= 0.0) continue;
      const double ratio = max_duration / mean;
      worst = std::max(worst, ratio);
      sum += ratio;
      ++counted;
    }
    imbalance.rounds = counted;
    imbalance.worst = worst;
    imbalance.mean = counted > 0 ? sum / static_cast<double>(counted) : 0.0;
    result.push_back(imbalance);
  }
  return result;
}

}  // namespace

Report analyze(const TraceGraph& graph) {
  Report report;
  report.makespan = graph.makespan();
  const PredecessorIndex preds(graph);
  report.critical_path = extract_critical_path(graph, preds);
  report.lanes = lane_usage(graph, report.makespan);
  auto [overlap_spans, overall] = overlap_analysis(graph);
  report.overlap_spans = std::move(overlap_spans);
  report.overlap_efficiency = overall;
  report.imbalance = imbalance_analysis(graph);
  return report;
}

// --- what-if projection -----------------------------------------------------

double project_makespan(const TraceGraph& graph,
                        const std::map<std::string, double>& rates) {
  const auto& spans = graph.spans();
  if (spans.empty()) return 0.0;
  const PredecessorIndex preds(graph);

  const auto rate_for = [&rates](const std::string& key) {
    const auto it = rates.find(key);
    return it == rates.end() ? 1.0 : it->second;
  };
  const double net_rate = rate_for("net");

  // Per-span speed factor: category rate times any device-prefix rate
  // matching the span's lane name.
  std::vector<double> factor(spans.size(), 1.0);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    factor[i] = rate_for(spans[i].category);
    const std::string lane = graph.lane_label(spans[i].rank, spans[i].lane);
    for (const auto& [key, rate] : rates) {
      if (key == "net" || key == spans[i].category) continue;
      if (lane.rfind(key, 0) == 0) factor[i] *= rate;
    }
  }

  // Dataflow replay in dependency order. Structural predecessors carry the
  // rank's serialized progress; non-message edges act the same way; message
  // edges re-price the transit lag with the net rate. Every formula
  // returns the measured value verbatim when nothing upstream moved and
  // the local factor is 1, so an all-1x projection is bit-exact.
  std::vector<std::vector<std::size_t>> succs(spans.size());
  std::vector<std::size_t> degree(spans.size(), 0);
  const auto add_dep = [&](std::size_t from, std::size_t to) {
    succs[from].push_back(to);
    ++degree[to];
  };
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (const auto& edge : preds.edge_preds(i)) add_dep(edge.from, i);
    if (std::size_t structural = 0; preds.structural_pred(i, structural)) {
      add_dep(structural, i);
    }
  }

  std::vector<double> new_end(spans.size(), 0.0);
  std::vector<bool> done(spans.size(), false);
  std::set<std::size_t> ready;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (degree[i] == 0) ready.insert(i);
  }

  const auto replay = [&](std::size_t i) {
    const auto& span = spans[i];
    // Projected begin: the max over begin-constraining predecessors
    // (structural + non-message edges). An unshifted predecessor reproduces
    // the measured begin (the gap to it is fixed slack); a shifted one pulls
    // the span earlier by the same slack. Only a span with no such
    // predecessor keeps its measured begin unconditionally.
    bool constrained = false;
    double begin = 0.0;
    const auto constrain_begin = [&](std::size_t from) {
      const auto& pred = spans[from];
      const double candidate =
          new_end[from] == pred.end
              ? std::max(span.begin, pred.end)
              : new_end[from] + std::max(0.0, span.begin - pred.end);
      begin = constrained ? std::max(begin, candidate) : candidate;
      constrained = true;
    };
    for (const auto& edge : preds.edge_preds(i)) {
      if (edge.is_message) continue;  // constrains the end, not the begin
      constrain_begin(edge.from);
    }
    if (std::size_t structural = 0; preds.structural_pred(i, structural)) {
      constrain_begin(structural);
    }
    if (!constrained) begin = span.begin;

    // Projected end. A span with a binding message arrival (a recv) spends
    // its measured duration waiting on transit, so the message candidates
    // govern its end and the local base is just the begin; otherwise the
    // measured duration is local work, re-priced by the span's factor.
    bool message_bound = false;
    double message_end = 0.0;
    for (const auto& edge : preds.edge_preds(i)) {
      if (!edge.is_message) continue;
      const auto& pred = spans[edge.from];
      const double lag = span.end - pred.end;
      if (lag < 0.0) continue;  // the arrival was not binding
      const double candidate =
          new_end[edge.from] == pred.end && net_rate == 1.0
              ? span.end
              : new_end[edge.from] + lag / net_rate;
      message_end = message_bound ? std::max(message_end, candidate)
                                  : candidate;
      message_bound = true;
    }
    const double duration = span.end - span.begin;
    double end;
    if (message_bound) {
      end = std::max(begin, message_end);
    } else {
      end = begin == span.begin && factor[i] == 1.0
                ? span.end
                : begin + duration / factor[i];
    }
    new_end[i] = end;
    done[i] = true;
  };

  while (!ready.empty()) {
    const std::size_t i = *ready.begin();
    ready.erase(ready.begin());
    replay(i);
    for (const std::size_t next : succs[i]) {
      if (--degree[next] == 0) ready.insert(next);
    }
  }
  // A dependency cycle would leave spans unprocessed; fall back to their
  // measured ends so the projection stays defined.
  double projected = 0.0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    projected = std::max(projected, done[i] ? new_end[i] : spans[i].end);
  }
  return projected;
}

// --- report rendering -------------------------------------------------------

std::string report_to_json(const TraceGraph& graph, const Report& report,
                           const std::map<std::string, double>& what_if) {
  std::string out;
  out += "{\"schema\":\"psf.analysis\",\"version\":1,\"makespan\":";
  append_double(out, report.makespan);

  out += ",\"critical_path\":{\"total\":";
  append_double(out, report.critical_path.total);
  out += ",\"by_category\":{";
  bool first = true;
  for (const auto& [category, time] : report.critical_path.by_category) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, category);
    out.push_back(':');
    append_double(out, time);
  }
  out += "},\"segments\":[";
  first = true;
  for (const auto& segment : report.critical_path.segments) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"category\":";
    append_json_string(out, segment.category);
    out += ",\"name\":";
    append_json_string(out, segment.name);
    out += ",\"rank\":" + std::to_string(segment.rank);
    out += ",\"lane\":" + std::to_string(segment.lane);
    out += ",\"begin\":";
    append_double(out, segment.begin);
    out += ",\"end\":";
    append_double(out, segment.end);
    out.push_back('}');
  }
  out += "]}";

  out += ",\"lanes\":[";
  first = true;
  for (const auto& lane : report.lanes) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"rank\":" + std::to_string(lane.rank);
    out += ",\"lane\":" + std::to_string(lane.lane);
    out += ",\"name\":";
    append_json_string(out, lane.name);
    out += ",\"spans\":" + std::to_string(lane.spans);
    out += ",\"busy\":";
    append_double(out, lane.busy);
    out += ",\"utilization\":";
    append_double(out, lane.utilization);
    out += ",\"idle_gaps\":" + std::to_string(lane.idle_gaps);
    out += ",\"idle_total\":";
    append_double(out, lane.idle_total);
    out += ",\"idle_max\":";
    append_double(out, lane.idle_max);
    out.push_back('}');
  }
  out += "]";

  out += ",\"overlap\":{\"efficiency\":";
  append_double(out, report.overlap_efficiency);
  out += ",\"spans\":[";
  first = true;
  for (const auto& overlap : report.overlap_spans) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    append_json_string(out, overlap.name);
    out += ",\"rank\":" + std::to_string(overlap.rank);
    out += ",\"begin\":";
    append_double(out, overlap.begin);
    out += ",\"end\":";
    append_double(out, overlap.end);
    out += ",\"overlapped\":";
    append_double(out, overlap.overlapped);
    out += ",\"efficiency\":";
    append_double(out, overlap.efficiency);
    out.push_back('}');
  }
  out += "]}";

  out += ",\"imbalance\":[";
  first = true;
  for (const auto& imbalance : report.imbalance) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"rank\":" + std::to_string(imbalance.rank);
    out += ",\"rounds\":" + std::to_string(imbalance.rounds);
    out += ",\"worst\":";
    append_double(out, imbalance.worst);
    out += ",\"mean\":";
    append_double(out, imbalance.mean);
    out.push_back('}');
  }
  out += "]";

  if (!what_if.empty()) {
    const double projected = project_makespan(graph, what_if);
    out += ",\"what_if\":{\"rates\":{";
    first = true;
    for (const auto& [key, rate] : what_if) {
      if (!first) out.push_back(',');
      first = false;
      append_json_string(out, key);
      out.push_back(':');
      append_double(out, rate);
    }
    out += "},\"projected_makespan\":";
    append_double(out, projected);
    out += ",\"speedup\":";
    append_double(out, projected > 0.0 ? report.makespan / projected : 0.0);
    out += "}";
  }
  out += "}";
  return out;
}

std::string report_to_text(const TraceGraph& graph, const Report& report,
                           const std::map<std::string, double>& what_if) {
  std::ostringstream out;
  out << "=== psf-analyze ===\n";
  out << "makespan: " << format_double(report.makespan) << " s  ("
      << graph.spans().size() << " spans, " << graph.edges().size()
      << " edges)\n\n";

  out << "critical path (" << format_double(report.critical_path.total)
      << " s):\n";
  for (const auto& [category, time] : report.critical_path.by_category) {
    const double share =
        report.critical_path.total > 0.0
            ? 100.0 * time / report.critical_path.total
            : 0.0;
    char line[96];
    std::snprintf(line, sizeof(line), "  %-8s %12.6g s  %5.1f%%\n",
                  category.c_str(), time, share);
    out << line;
  }
  out << "  segments: " << report.critical_path.segments.size() << "\n";
  constexpr std::size_t kMaxSegments = 24;
  const auto& segments = report.critical_path.segments;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (segments.size() > kMaxSegments && i == kMaxSegments / 2) {
      out << "    ... (" << segments.size() - kMaxSegments
          << " more segments)\n";
      i = segments.size() - kMaxSegments / 2;
    }
    const auto& segment = segments[i];
    char line[160];
    std::snprintf(line, sizeof(line),
                  "    [%11.6g, %11.6g] %-8s rank%d/%s %s\n", segment.begin,
                  segment.end, segment.category.c_str(), segment.rank,
                  graph.lane_label(segment.rank, segment.lane).c_str(),
                  segment.name.c_str());
    out << line;
  }

  out << "\nlanes:\n";
  for (const auto& lane : report.lanes) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  rank%d/%-6s %4zu spans  busy %10.6g s  util %5.1f%%  "
                  "idle %10.6g s in %zu gaps (max %.6g)\n",
                  lane.rank, lane.name.c_str(), lane.spans, lane.busy,
                  100.0 * lane.utilization, lane.idle_total, lane.idle_gaps,
                  lane.idle_max);
    out << line;
  }

  if (!report.overlap_spans.empty()) {
    char line[96];
    std::snprintf(line, sizeof(line),
                  "\noverlap efficiency: %.4f over %zu comm spans\n",
                  report.overlap_efficiency, report.overlap_spans.size());
    out << line;
  }
  for (const auto& imbalance : report.imbalance) {
    char line[128];
    std::snprintf(line, sizeof(line),
                  "imbalance rank%d: worst %.3fx, mean %.3fx over %zu "
                  "rounds (max/avg device time)\n",
                  imbalance.rank, imbalance.worst, imbalance.mean,
                  imbalance.rounds);
    out << line;
  }

  if (!what_if.empty()) {
    const double projected = project_makespan(graph, what_if);
    out << "\nwhat-if:";
    for (const auto& [key, rate] : what_if) {
      out << " " << key << "=" << format_double(rate) << "x";
    }
    out << "\n  projected makespan: " << format_double(projected) << " s";
    if (projected > 0.0) {
      char line[48];
      std::snprintf(line, sizeof(line), "  (%.3fx speedup)\n",
                    report.makespan / projected);
      out << line;
    } else {
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace psf::analysis
