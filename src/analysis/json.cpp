#include "analysis/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace psf::analysis {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_number() ? member->as_number()
                                                  : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_string() ? member->as_string()
                                                  : std::move(fallback);
}

JsonValue JsonValue::make_bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::make_number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

/// Hand-rolled recursive-descent parser over the input view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  support::StatusOr<JsonValue> parse() {
    JsonValue value;
    PSF_RETURN_IF_ERROR(parse_value(value, /*depth=*/0));
    skip_whitespace();
    if (pos_ != text_.size()) {
      return error("trailing characters after the top-level value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  support::Status error(const std::string& what) const {
    return support::Status::invalid_argument(
        "JSON parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  support::Status parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    skip_whitespace();
    if (pos_ >= text_.size()) return error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind_ = JsonValue::Kind::kString;
        return parse_string(out.string_);
      case 't':
        if (text_.substr(pos_, 4) != "true") return error("expected 'true'");
        pos_ += 4;
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return support::Status::ok();
      case 'f':
        if (text_.substr(pos_, 5) != "false") {
          return error("expected 'false'");
        }
        pos_ += 5;
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return support::Status::ok();
      case 'n':
        if (text_.substr(pos_, 4) != "null") return error("expected 'null'");
        pos_ += 4;
        out.kind_ = JsonValue::Kind::kNull;
        return support::Status::ok();
      default:
        return parse_number(out);
    }
  }

  support::Status parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.kind_ = JsonValue::Kind::kObject;
    skip_whitespace();
    if (consume('}')) return support::Status::ok();
    for (;;) {
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return error("expected a member name");
      }
      std::string key;
      PSF_RETURN_IF_ERROR(parse_string(key));
      skip_whitespace();
      if (!consume(':')) return error("expected ':' after member name");
      JsonValue member;
      PSF_RETURN_IF_ERROR(parse_value(member, depth + 1));
      out.object_.insert_or_assign(std::move(key), std::move(member));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume('}')) return support::Status::ok();
      return error("expected ',' or '}' in object");
    }
  }

  support::Status parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.kind_ = JsonValue::Kind::kArray;
    skip_whitespace();
    if (consume(']')) return support::Status::ok();
    for (;;) {
      JsonValue item;
      PSF_RETURN_IF_ERROR(parse_value(item, depth + 1));
      out.array_.push_back(std::move(item));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume(']')) return support::Status::ok();
      return error("expected ',' or ']' in array");
    }
  }

  support::Status parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return support::Status::ok();
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A') + 10;
            } else {
              return error("invalid \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (the writer only escapes
          // control characters, so surrogate pairs never occur here).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return error("invalid escape character");
      }
    }
    return error("unterminated string");
  }

  support::Status parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return error("expected a value");
    // strtod needs a terminated buffer; numbers are short, so copy.
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      return error("malformed number '" + token + "'");
    }
    out.kind_ = JsonValue::Kind::kNumber;
    out.number_ = value;
    return support::Status::ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

support::StatusOr<JsonValue> parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

support::StatusOr<JsonValue> parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return support::Status::invalid_argument("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json(buffer.str());
}

}  // namespace psf::analysis
