// PSF — Pattern Specification Framework
// Minimal JSON document model and recursive-descent parser, sufficient for
// reading the Chrome traces and psf.metrics reports the framework emits.
// No external dependencies; numbers are parsed with strtod so doubles
// printed with %.17g round-trip exactly.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace psf::analysis {

/// A parsed JSON value. Objects keep their members in a map (member order is
/// irrelevant for every document the framework reads).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const std::vector<JsonValue>& as_array() const {
    return array_;
  }
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object() const {
    return object_;
  }

  /// Object member lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Typed member conveniences, returning a fallback when the member is
  /// missing or has the wrong kind.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool value);
  static JsonValue make_number(double value);
  static JsonValue make_string(std::string value);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::map<std::string, JsonValue> members);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parse a complete JSON document. Trailing garbage after the top-level
/// value is an error; parse failures carry a byte offset in the message.
[[nodiscard]] support::StatusOr<JsonValue> parse_json(std::string_view text);

/// Read and parse a JSON file.
[[nodiscard]] support::StatusOr<JsonValue> parse_json_file(
    const std::string& path);

}  // namespace psf::analysis
