// PSF — Pattern Specification Framework
// Causal trace analysis: turns the dependency-aware span traces the
// runtimes record (timemodel::TraceRecorder) into a performance report —
// critical path with per-category attribution, lane utilization and idle
// gaps, per-iteration load imbalance, graph-derived overlap efficiency,
// and a what-if projector that replays the DAG under scaled rates.
//
// Determinism contract: span VALUES are bit-identical for any executor
// width, but recording order and id assignment are not. Every ordering
// decision here (canonical indices, tie-breaks, topological order) is
// therefore derived from span values only, never from ids or input order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/error.h"
#include "timemodel/trace.h"

namespace psf::analysis {

/// One edge of the causal DAG, in canonical span indices.
struct GraphEdge {
  std::size_t from = 0;  ///< canonical index of the producing span
  std::size_t to = 0;    ///< canonical index of the consuming span
  std::string kind;      ///< "message", "stream", "exchange", "chunk", ...
};

/// A trace snapshot in canonical (value-ordered) form. Spans are sorted by
/// (rank, lane, begin, end, name, category); edges reference spans by their
/// canonical index and are sorted the same way, so two graphs built from
/// traces of the same run compare equal regardless of recording order.
class TraceGraph {
 public:
  /// Build from a live recorder (same process).
  static TraceGraph from_recorder(const timemodel::TraceRecorder& recorder);

  /// Build from the Chrome JSON a recorder wrote. Spans are reconstructed
  /// losslessly from the exact begin/end doubles carried in event args;
  /// edges come from the top-level psfEdges array.
  static support::StatusOr<TraceGraph> from_chrome_json(
      const std::string& text);
  static support::StatusOr<TraceGraph> from_chrome_json_file(
      const std::string& path);

  [[nodiscard]] const std::vector<timemodel::TraceSpan>& spans() const {
    return spans_;
  }
  [[nodiscard]] const std::vector<GraphEdge>& edges() const {
    return edges_;
  }
  [[nodiscard]] const std::map<int, std::string>& process_names() const {
    return process_names_;
  }
  [[nodiscard]] const std::map<std::pair<int, int>, std::string>& lane_names()
      const {
    return lane_names_;
  }

  /// Label for a lane: its registered name, else "lane<n>".
  [[nodiscard]] std::string lane_label(int rank, int lane) const;

  /// Max span end over the whole trace; 0 when empty. For a minimpi-driven
  /// run this equals the world's makespan bit-exactly: each rank's final
  /// timeline value is the end of its last recorded operation.
  [[nodiscard]] double makespan() const;

 private:
  void canonicalize(std::vector<timemodel::TraceSpan> spans,
                    std::vector<timemodel::TraceEdge> edges);

  std::vector<timemodel::TraceSpan> spans_;  ///< canonical order, ids kept
  std::vector<GraphEdge> edges_;             ///< canonical-index endpoints
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int>, std::string> lane_names_;
};

/// One segment of the critical path: the slice of wall (virtual) time
/// attributed to `category` while `span` was the binding operation.
struct CriticalSegment {
  std::size_t span = 0;  ///< canonical index; ignored for "idle" segments
  std::string category;  ///< "compute", "comm", "copy", or "idle"
  std::string name;      ///< span name ("" for idle)
  int rank = 0;
  int lane = 0;
  double begin = 0.0;
  double end = 0.0;
};

/// Critical path through the causal DAG, walked backwards from the span
/// with the latest end. `total` is the trace makespan (reported directly,
/// not as a sum of segments, so it is bit-exact).
struct CriticalPath {
  double total = 0.0;
  std::vector<CriticalSegment> segments;       ///< in forward time order
  std::map<std::string, double> by_category;  ///< includes "idle"
};

/// Busy/idle breakdown of one (rank, lane) pair.
struct LaneUsage {
  int rank = 0;
  int lane = 0;
  std::string name;
  std::size_t spans = 0;
  double busy = 0.0;         ///< union of span intervals
  double utilization = 0.0;  ///< busy / makespan
  std::size_t idle_gaps = 0;  ///< gaps between busy intervals
  double idle_total = 0.0;    ///< summed gap time (first span to last end)
  double idle_max = 0.0;      ///< longest single gap
};

/// Overlap achieved by one communication span: the fraction of its
/// duration covered by same-rank device-lane compute.
struct OverlapSpan {
  std::size_t span = 0;
  std::string name;
  int rank = 0;
  double begin = 0.0;
  double end = 0.0;
  double overlapped = 0.0;
  double efficiency = 0.0;
};

/// Per-rank load imbalance across device lanes, per compute round. Round i
/// pairs the i-th compute span of every device lane of the rank.
struct RankImbalance {
  int rank = 0;
  std::size_t rounds = 0;
  double worst = 0.0;  ///< max over rounds of (max / avg) device time
  double mean = 0.0;   ///< mean over rounds
};

/// The full analysis result.
struct Report {
  double makespan = 0.0;
  CriticalPath critical_path;
  std::vector<LaneUsage> lanes;
  std::vector<OverlapSpan> overlap_spans;
  double overlap_efficiency = 0.0;  ///< duration-weighted mean, 0 if none
  std::vector<RankImbalance> imbalance;
};

/// Analyze a trace graph.
[[nodiscard]] Report analyze(const TraceGraph& graph);

/// Replay the DAG with per-category / per-device / network rate factors and
/// return the projected makespan. Keys: a category name ("compute",
/// "comm", "copy") scales matching spans; a device prefix ("cpu", "gpu",
/// "mic") scales spans on lanes whose name starts with it; "net" scales the
/// transit lag of message edges. Factors multiply when several keys match a
/// span; factor 2 means twice as fast. With all factors at 1 (or an empty
/// map) the projection reproduces the measured makespan bit-exactly.
[[nodiscard]] double project_makespan(
    const TraceGraph& graph, const std::map<std::string, double>& rates);

/// Render the report as a versioned psf.analysis JSON document. When
/// `what_if` is non-empty a "what_if" section with the projected makespan
/// under those rates is included.
[[nodiscard]] std::string report_to_json(
    const TraceGraph& graph, const Report& report,
    const std::map<std::string, double>& what_if = {});

/// Render the report as a human-readable text summary.
[[nodiscard]] std::string report_to_text(
    const TraceGraph& graph, const Report& report,
    const std::map<std::string, double>& what_if = {});

}  // namespace psf::analysis
