// PSF — Pattern Specification Framework
// psf::fault — deterministic, seeded fault injection plans.
//
// A FaultPlan describes which faults to inject into a run. Plans are parsed
// from a compact spec string (EnvOptions::with_fault_plan or the
// PSF_FAULT_PLAN environment variable) with `;`-separated clauses:
//
//   device:<rank|*>.<device>@iter=N
//       Device loss: the named accelerator ("gpu1", "mic3", ...) on the
//       given rank (or every rank with `*`) dies on its first kernel launch
//       of pattern iteration N (1-based). CPU devices cannot be targeted —
//       a surviving device must always exist to replay the lost work.
//
//   msg_drop:p=F[,corrupt=F][,dup=F][,delay_p=F][,delay_s=F][,timeout_s=F]
//            [,backoff_s=F][,deadline_ms=N][,retries=N][,seed=S]
//       Message faults on every minimpi send: with probability p the message
//       is dropped in flight (the sender retransmits after a virtual
//       timeout + backoff), with probability `corrupt` a damaged copy is
//       delivered first (the receiver rejects it by CRC32 and the sender
//       retransmits), with probability `dup` the message is delivered
//       twice (the receiver dedups by sequence number), and with
//       probability `delay_p` delivery is delayed by delay_s virtual
//       seconds. Draws come from a per-rank splitmix64 stream seeded with
//       `seed`, so the injected sequence is identical across runs and
//       executor widths. deadline_ms > 0 additionally arms a wall-clock
//       receive deadline on every blocking receive (a hang detector; 0 =
//       disabled).
//
//   job_fail:p=F[,seed=S]
//       Serving chaos (ServerOptions::chaos_plan): with probability p a
//       dispatched job attempt fails before its body runs, surfacing a
//       retryable kUnavailable. Draws are keyed by (admission seq, attempt)
//       so the injected sequence is identical across runs and executor
//       widths regardless of runner interleaving.
//
//   runner_stall:ms=N[,p=F][,seed=S]
//       Serving chaos: with probability p (default 1) the runner stalls N
//       wall-clock milliseconds after dispatching a job, before its body
//       runs — models a slow/overloaded worker. The stall lands in the
//       job's run_wall_s, pushing it toward its deadline; vtime is never
//       affected. Same (seq, attempt) keying as job_fail.
//
//   submit_burst:every=K,count=B[,priority=P]
//       Serving chaos, interpreted CLIENT-side (bench/loadgen --chaos):
//       after every K-th measured submission the client injects B extra
//       jobs at priority P (default 0) to force queue pressure and load
//       shedding. Server-side clauses ignore it.
//
//   rank:<R>@iter=N  |  rank:<R>@vtime=X
//       Rank failure for the iterative runtimes (GReduction, Stencil):
//       rank R is "killed" at the first iteration boundary at (or, for
//       vtime, after) the trigger, then restarted from the last
//       iteration-boundary checkpoint. All ranks roll back together and
//       replay the lost iteration, so the final answer is bit-identical to
//       a fault-free run; the restarted rank is charged the restart +
//       checkpoint-reload cost in virtual time.
//
// All injection is priced in VIRTUAL time and drawn from seeded streams:
// the same plan + seed yields the same fault sequence and bit-identical
// results at any executor width. See docs/RESILIENCE.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/ambient.h"
#include "support/error.h"

namespace psf::fault {

/// Virtual seconds between a device dying and the runtime detecting it.
inline constexpr double kDeviceLossDetectS = 1.0e-3;

/// Virtual seconds to restart a killed rank (process respawn + rejoin).
inline constexpr double kRankRestartS = 0.5;

/// Virtual bytes/s for writing and reloading iteration checkpoints.
inline constexpr double kCheckpointBytesPerS = 1.0e9;

/// Deterministic splitmix64 stream for fault draws. Cheap, seedable, and
/// independent per rank so injection order never depends on thread timing.
class FaultRng {
 public:
  explicit FaultRng(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next_u64() noexcept {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// One scheduled device loss.
struct DeviceFault {
  int rank = -1;       ///< target rank; -1 matches every rank (`*`)
  std::string device;  ///< devsim descriptor name, e.g. "gpu1"
  int iteration = 1;   ///< 1-based pattern iteration at which the loss fires
};

/// Message-fault injection parameters (see the grammar above).
struct MsgFaultSpec {
  double p_drop = 0.0;
  double p_corrupt = 0.0;
  double p_dup = 0.0;
  double p_delay = 0.0;
  double delay_s = 1.0e-4;    ///< extra delivery latency for delayed messages
  double timeout_s = 5.0e-4;  ///< virtual retransmission timeout per attempt
  double backoff_s = 2.0e-4;  ///< additional virtual backoff per retry
  int deadline_ms = 0;        ///< wall-clock recv deadline; 0 disables
  int max_retries = 8;        ///< attempts before the send gives up
  std::uint64_t seed = 1;
};

/// One scheduled rank failure; exactly one of iteration/vtime is set.
struct RankFault {
  int rank = 0;
  int iteration = -1;  ///< fire at the boundary after this iteration (1-based)
  double vtime = -1.0; ///< or: at the first boundary where now() >= vtime
};

/// Serving chaos: fail a dispatched job attempt with probability p before
/// its body runs (surfaced as retryable kUnavailable).
struct JobFailSpec {
  double p = 0.0;
  std::uint64_t seed = 1;
};

/// Serving chaos: stall the runner `ms` wall milliseconds after dispatch
/// with probability p, before the job body runs.
struct RunnerStallSpec {
  int ms = 0;
  double p = 1.0;
  std::uint64_t seed = 1;
};

/// Serving chaos, client-side: after every K-th measured submission the
/// load generator injects `count` extra jobs at `priority`.
struct SubmitBurstSpec {
  int every = 0;   ///< burst after every K-th submission; 0 = never
  int count = 0;   ///< jobs per burst
  int priority = 0;
};

/// A parsed, validated fault plan. Immutable after parse().
class FaultPlan {
 public:
  /// Parse a plan spec; returns kInvalidArgument with a pointer to the bad
  /// clause on malformed input. An empty/whitespace spec parses to an empty
  /// plan.
  static support::StatusOr<FaultPlan> parse(std::string_view spec);

  [[nodiscard]] bool empty() const noexcept {
    return device_faults_.empty() && !has_msg_ && rank_faults_.empty() &&
           !has_job_fail_ && !has_runner_stall_ && !has_submit_burst_;
  }

  [[nodiscard]] const std::vector<DeviceFault>& device_faults() const noexcept {
    return device_faults_;
  }

  /// Message-fault parameters, or nullptr when the plan has none.
  [[nodiscard]] const MsgFaultSpec* msg() const noexcept {
    return has_msg_ ? &msg_ : nullptr;
  }

  [[nodiscard]] const std::vector<RankFault>& rank_faults() const noexcept {
    return rank_faults_;
  }
  [[nodiscard]] bool has_rank_faults() const noexcept {
    return !rank_faults_.empty();
  }

  /// Serving-chaos parameters, or nullptr when the plan has none.
  [[nodiscard]] const JobFailSpec* job_fail() const noexcept {
    return has_job_fail_ ? &job_fail_ : nullptr;
  }
  [[nodiscard]] const RunnerStallSpec* runner_stall() const noexcept {
    return has_runner_stall_ ? &runner_stall_ : nullptr;
  }
  [[nodiscard]] const SubmitBurstSpec* submit_burst() const noexcept {
    return has_submit_burst_ ? &submit_burst_ : nullptr;
  }
  /// True when any server-side chaos clause (job_fail / runner_stall) is
  /// armed — Server consults this to skip the injection path entirely.
  [[nodiscard]] bool has_server_chaos() const noexcept {
    return has_job_fail_ || has_runner_stall_;
  }

  /// The device fault due for (rank, device name) at `iteration`, or nullptr.
  [[nodiscard]] const DeviceFault* device_fault_due(int rank,
                                                    std::string_view device,
                                                    int iteration) const;

 private:
  std::vector<DeviceFault> device_faults_;
  MsgFaultSpec msg_;
  bool has_msg_ = false;
  std::vector<RankFault> rank_faults_;
  JobFailSpec job_fail_;
  bool has_job_fail_ = false;
  RunnerStallSpec runner_stall_;
  bool has_runner_stall_ = false;
  SubmitBurstSpec submit_burst_;
  bool has_submit_burst_ = false;
};

/// Process-wide log of injected fault events, keyed by rank. Disabled by
/// default (zero overhead beyond one atomic-ish bool read per event site);
/// tests enable it to assert that the same seed yields the same injected
/// sequence. Per-rank event order is deterministic; the map keeps ranks
/// sorted so snapshots compare stably.
class FaultLog {
 public:
  static FaultLog& global();

  /// The log fault-event sites resolve against on the calling thread: the
  /// scoped override installed by ScopedFaultLog (directly or through
  /// serve::JobScope, propagated across executor task submission), or
  /// global() when none is installed. Per-job logs keep one tenant's
  /// injected faults out of another tenant's event stream.
  [[nodiscard]] static FaultLog& current() noexcept {
    void* scoped = support::ambient::get(support::ambient::Slot::kFaultLog);
    return scoped != nullptr ? *static_cast<FaultLog*>(scoped) : global();
  }

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(int rank, std::string event);
  [[nodiscard]] std::map<int, std::vector<std::string>> snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  std::map<int, std::vector<std::string>> events_;
};

/// RAII: route the calling thread's fault events into `log` instead of the
/// global one. Scopes nest; destruction restores the previous override.
/// The log must outlive the scope and any executor tasks submitted under
/// it (see support/ambient.h).
class ScopedFaultLog {
 public:
  explicit ScopedFaultLog(FaultLog* log) noexcept
      : previous_(
            support::ambient::swap(support::ambient::Slot::kFaultLog, log)) {}
  ScopedFaultLog(const ScopedFaultLog&) = delete;
  ScopedFaultLog& operator=(const ScopedFaultLog&) = delete;
  ~ScopedFaultLog() {
    support::ambient::swap(support::ambient::Slot::kFaultLog, previous_);
  }

 private:
  void* previous_;
};

}  // namespace psf::fault
