// PSF — fault-plan parsing and the shared fault log.
#include "fault/fault.h"

#include <charconv>
#include <cstdlib>

namespace psf::fault {
namespace {

using support::Status;
using support::StatusOr;

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_int(std::string_view s, int& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  // std::from_chars for double is missing in some libstdc++ configurations;
  // strtod needs a terminated copy.
  const std::string copy(s);
  char* end = nullptr;
  out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

std::string clause_error(std::string_view clause, const char* why) {
  std::string msg = "fault plan: bad clause '";
  msg.append(clause);
  msg += "': ";
  msg += why;
  return msg;
}

Status parse_device_clause(std::string_view body, std::string_view clause,
                           std::vector<DeviceFault>& out) {
  // <rank|*>.<device>@iter=N
  const std::size_t dot = body.find('.');
  const std::size_t at = body.find('@');
  if (dot == std::string_view::npos || at == std::string_view::npos ||
      dot > at) {
    return Status::invalid_argument(
        clause_error(clause, "want device:<rank|*>.<name>@iter=N"));
  }
  DeviceFault fault;
  const std::string_view rank_str = trim(body.substr(0, dot));
  if (rank_str == "*") {
    fault.rank = -1;
  } else if (!parse_int(rank_str, fault.rank) || fault.rank < 0) {
    return Status::invalid_argument(
        clause_error(clause, "rank must be a non-negative integer or '*'"));
  }
  fault.device = std::string(trim(body.substr(dot + 1, at - dot - 1)));
  if (fault.device.rfind("gpu", 0) != 0 && fault.device.rfind("mic", 0) != 0) {
    return Status::invalid_argument(clause_error(
        clause,
        "only accelerators (gpu*/mic*) can be lost — the CPU must survive "
        "to replay the work"));
  }
  const std::string_view trigger = trim(body.substr(at + 1));
  if (trigger.rfind("iter=", 0) != 0 ||
      !parse_int(trigger.substr(5), fault.iteration) || fault.iteration < 1) {
    return Status::invalid_argument(
        clause_error(clause, "trigger must be @iter=N with N >= 1"));
  }
  out.push_back(std::move(fault));
  return Status::ok();
}

Status parse_msg_clause(std::string_view body, std::string_view clause,
                        MsgFaultSpec& spec, bool& has_msg) {
  if (has_msg) {
    return Status::invalid_argument(
        clause_error(clause, "duplicate msg_drop clause"));
  }
  std::string_view rest = body;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view pair = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return Status::invalid_argument(
          clause_error(clause, "msg_drop options must be key=value"));
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    bool ok = true;
    if (key == "p") {
      ok = parse_double(value, spec.p_drop);
    } else if (key == "corrupt") {
      ok = parse_double(value, spec.p_corrupt);
    } else if (key == "dup") {
      ok = parse_double(value, spec.p_dup);
    } else if (key == "delay_p") {
      ok = parse_double(value, spec.p_delay);
    } else if (key == "delay_s") {
      ok = parse_double(value, spec.delay_s) && spec.delay_s >= 0.0;
    } else if (key == "timeout_s") {
      ok = parse_double(value, spec.timeout_s) && spec.timeout_s >= 0.0;
    } else if (key == "backoff_s") {
      ok = parse_double(value, spec.backoff_s) && spec.backoff_s >= 0.0;
    } else if (key == "deadline_ms") {
      ok = parse_int(value, spec.deadline_ms) && spec.deadline_ms >= 0;
    } else if (key == "retries") {
      ok = parse_int(value, spec.max_retries) && spec.max_retries >= 1;
    } else if (key == "seed") {
      ok = parse_u64(value, spec.seed);
    } else {
      return Status::invalid_argument(
          clause_error(clause, "unknown msg_drop option"));
    }
    if (!ok) {
      return Status::invalid_argument(
          clause_error(clause, "malformed msg_drop option value"));
    }
  }
  for (const double p :
       {spec.p_drop, spec.p_corrupt, spec.p_dup, spec.p_delay}) {
    if (p < 0.0 || p >= 1.0) {
      return Status::invalid_argument(
          clause_error(clause, "probabilities must lie in [0, 1)"));
    }
  }
  if (spec.p_drop + spec.p_corrupt + spec.p_dup + spec.p_delay >= 1.0) {
    return Status::invalid_argument(
        clause_error(clause, "fault probabilities must sum below 1"));
  }
  has_msg = true;
  return Status::ok();
}

/// Iterate `body` as comma-separated key=value pairs, calling
/// `on_pair(key, value)` for each; on_pair returns false for an unknown key.
template <typename Fn>
Status parse_kv_options(std::string_view body, std::string_view clause,
                        const char* what, Fn&& on_pair) {
  std::string_view rest = body;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view pair = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return Status::invalid_argument(clause_error(
          clause, (std::string(what) + " options must be key=value").c_str()));
    }
    const int verdict = on_pair(pair.substr(0, eq), pair.substr(eq + 1));
    if (verdict < 0) {
      return Status::invalid_argument(
          clause_error(clause, (std::string("unknown ") + what +
                                " option").c_str()));
    }
    if (verdict == 0) {
      return Status::invalid_argument(
          clause_error(clause, (std::string("malformed ") + what +
                                " option value").c_str()));
    }
  }
  return Status::ok();
}

Status parse_job_fail_clause(std::string_view body, std::string_view clause,
                             JobFailSpec& spec, bool& has) {
  if (has) {
    return Status::invalid_argument(
        clause_error(clause, "duplicate job_fail clause"));
  }
  bool saw_p = false;
  PSF_RETURN_IF_ERROR(parse_kv_options(
      body, clause, "job_fail",
      [&](std::string_view key, std::string_view value) -> int {
        if (key == "p") {
          saw_p = true;
          return parse_double(value, spec.p) ? 1 : 0;
        }
        if (key == "seed") return parse_u64(value, spec.seed) ? 1 : 0;
        return -1;
      }));
  if (!saw_p || spec.p < 0.0 || spec.p >= 1.0) {
    return Status::invalid_argument(
        clause_error(clause, "job_fail needs p in [0, 1)"));
  }
  has = true;
  return Status::ok();
}

Status parse_runner_stall_clause(std::string_view body,
                                 std::string_view clause,
                                 RunnerStallSpec& spec, bool& has) {
  if (has) {
    return Status::invalid_argument(
        clause_error(clause, "duplicate runner_stall clause"));
  }
  bool saw_ms = false;
  PSF_RETURN_IF_ERROR(parse_kv_options(
      body, clause, "runner_stall",
      [&](std::string_view key, std::string_view value) -> int {
        if (key == "ms") {
          saw_ms = true;
          return parse_int(value, spec.ms) && spec.ms >= 1 ? 1 : 0;
        }
        if (key == "p") return parse_double(value, spec.p) ? 1 : 0;
        if (key == "seed") return parse_u64(value, spec.seed) ? 1 : 0;
        return -1;
      }));
  if (!saw_ms) {
    return Status::invalid_argument(
        clause_error(clause, "runner_stall needs ms=N with N >= 1"));
  }
  if (spec.p < 0.0 || spec.p > 1.0) {
    return Status::invalid_argument(
        clause_error(clause, "runner_stall p must lie in [0, 1]"));
  }
  has = true;
  return Status::ok();
}

Status parse_submit_burst_clause(std::string_view body,
                                 std::string_view clause,
                                 SubmitBurstSpec& spec, bool& has) {
  if (has) {
    return Status::invalid_argument(
        clause_error(clause, "duplicate submit_burst clause"));
  }
  PSF_RETURN_IF_ERROR(parse_kv_options(
      body, clause, "submit_burst",
      [&](std::string_view key, std::string_view value) -> int {
        if (key == "every") return parse_int(value, spec.every) ? 1 : 0;
        if (key == "count") return parse_int(value, spec.count) ? 1 : 0;
        if (key == "priority") return parse_int(value, spec.priority) ? 1 : 0;
        return -1;
      }));
  if (spec.every < 1 || spec.count < 1) {
    return Status::invalid_argument(clause_error(
        clause, "submit_burst needs every=K and count=B, both >= 1"));
  }
  has = true;
  return Status::ok();
}

Status parse_rank_clause(std::string_view body, std::string_view clause,
                         std::vector<RankFault>& out) {
  // <R>@iter=N | <R>@vtime=X
  const std::size_t at = body.find('@');
  if (at == std::string_view::npos) {
    return Status::invalid_argument(
        clause_error(clause, "want rank:<R>@iter=N or rank:<R>@vtime=X"));
  }
  RankFault fault;
  if (!parse_int(trim(body.substr(0, at)), fault.rank) || fault.rank < 0) {
    return Status::invalid_argument(
        clause_error(clause, "rank must be a non-negative integer"));
  }
  const std::string_view trigger = trim(body.substr(at + 1));
  if (trigger.rfind("iter=", 0) == 0) {
    if (!parse_int(trigger.substr(5), fault.iteration) ||
        fault.iteration < 1) {
      return Status::invalid_argument(
          clause_error(clause, "@iter=N needs N >= 1"));
    }
  } else if (trigger.rfind("vtime=", 0) == 0) {
    if (!parse_double(trigger.substr(6), fault.vtime) || fault.vtime < 0.0) {
      return Status::invalid_argument(
          clause_error(clause, "@vtime=X needs X >= 0"));
    }
  } else {
    return Status::invalid_argument(
        clause_error(clause, "trigger must be @iter=N or @vtime=X"));
  }
  out.push_back(fault);
  return Status::ok();
}

}  // namespace

StatusOr<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view clause = trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (clause.empty()) continue;
    const std::size_t colon = clause.find(':');
    if (colon == std::string_view::npos) {
      return Status::invalid_argument(
          clause_error(clause, "want <class>:<spec>"));
    }
    const std::string_view kind = clause.substr(0, colon);
    const std::string_view body = clause.substr(colon + 1);
    Status status;
    if (kind == "device") {
      status = parse_device_clause(body, clause, plan.device_faults_);
    } else if (kind == "msg_drop") {
      status = parse_msg_clause(body, clause, plan.msg_, plan.has_msg_);
    } else if (kind == "rank") {
      status = parse_rank_clause(body, clause, plan.rank_faults_);
    } else if (kind == "job_fail") {
      status = parse_job_fail_clause(body, clause, plan.job_fail_,
                                     plan.has_job_fail_);
    } else if (kind == "runner_stall") {
      status = parse_runner_stall_clause(body, clause, plan.runner_stall_,
                                         plan.has_runner_stall_);
    } else if (kind == "submit_burst") {
      status = parse_submit_burst_clause(body, clause, plan.submit_burst_,
                                         plan.has_submit_burst_);
    } else {
      status = Status::invalid_argument(
          clause_error(clause,
                       "unknown fault class (want device, msg_drop, rank, "
                       "job_fail, runner_stall, or submit_burst)"));
    }
    PSF_RETURN_IF_ERROR(status);
  }
  return plan;
}

const DeviceFault* FaultPlan::device_fault_due(int rank,
                                               std::string_view device,
                                               int iteration) const {
  for (const DeviceFault& fault : device_faults_) {
    if (fault.iteration == iteration &&
        (fault.rank < 0 || fault.rank == rank) && fault.device == device) {
      return &fault;
    }
  }
  return nullptr;
}

FaultLog& FaultLog::global() {
  static FaultLog log;
  return log;
}

void FaultLog::record(int rank, std::string event) {
  std::lock_guard<std::mutex> guard(mutex_);
  events_[rank].push_back(std::move(event));
}

std::map<int, std::vector<std::string>> FaultLog::snapshot() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return events_;
}

void FaultLog::reset() {
  std::lock_guard<std::mutex> guard(mutex_);
  events_.clear();
}

}  // namespace psf::fault
