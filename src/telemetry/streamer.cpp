#include "telemetry/streamer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

#include "support/log.h"
#include "telemetry/prof.h"
#include "telemetry/slo.h"

namespace psf::telemetry {

namespace detail {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_num(double value) {
  if (std::isinf(value)) {
    value = std::copysign(std::numeric_limits<double>::max(), value);
  } else if (std::isnan(value)) {
    value = 0.0;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace detail

namespace {

using detail::json_escape;
using detail::json_num;

HistogramStat digest(const metrics::Histogram::Snapshot& snap) {
  HistogramStat stat;
  stat.count = snap.count;
  stat.sum = snap.sum;
  stat.min = snap.min;
  stat.max = snap.max;
  stat.p50 = snap.quantile(0.50);
  stat.p90 = snap.quantile(0.90);
  stat.p99 = snap.quantile(0.99);
  return stat;
}

}  // namespace

std::string Snapshot::to_json() const {
  std::ostringstream json;
  json << "{\"schema\":\"psf.telemetry\",\"version\":1,"
       << "\"kind\":\"snapshot\",\"seq\":" << seq
       << ",\"uptime_s\":" << json_num(uptime_s) << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) json << ",";
    first = false;
    json << "\"" << json_escape(name) << "\":" << value;
  }
  json << "},\"deltas\":{";
  first = true;
  for (const auto& [name, value] : deltas) {
    if (!first) json << ",";
    first = false;
    json << "\"" << json_escape(name) << "\":" << value;
  }
  json << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) json << ",";
    first = false;
    json << "\"" << json_escape(name) << "\":" << json_num(value);
  }
  json << "},\"histograms\":{";
  first = true;
  for (const auto& [name, stat] : histograms) {
    if (!first) json << ",";
    first = false;
    json << "\"" << json_escape(name) << "\":{\"count\":" << stat.count
         << ",\"sum\":" << json_num(stat.sum)
         << ",\"min\":" << json_num(stat.min)
         << ",\"max\":" << json_num(stat.max)
         << ",\"p50\":" << json_num(stat.p50)
         << ",\"p90\":" << json_num(stat.p90)
         << ",\"p99\":" << json_num(stat.p99) << "}";
  }
  json << "},\"profile\":{";
  first = true;
  for (const auto& [tag, ticks] : profile) {
    if (!first) json << ",";
    first = false;
    json << "\"" << json_escape(tag) << "\":" << ticks;
  }
  json << "},\"workers\":[";
  first = true;
  for (const auto& worker : workers) {
    if (!first) json << ",";
    first = false;
    json << "[" << worker.slot << "," << worker.busy << "," << worker.ticks
         << "]";
  }
  json << "]}";
  return json.str();
}

SnapshotStreamer::SnapshotStreamer(Options options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &metrics::Registry::global();
  }
  options_.snapshot_period_ms = std::max(1, options_.snapshot_period_ms);
  options_.profile_period_ms =
      std::min(std::max(1, options_.profile_period_ms),
               options_.snapshot_period_ms);
  options_.ring_capacity = std::max<std::size_t>(1, options_.ring_capacity);
}

SnapshotStreamer::~SnapshotStreamer() { stop(); }

void SnapshotStreamer::start() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (running_) return;
  start_tp_ = std::chrono::steady_clock::now();
  baseline_ = options_.registry->counters();
  previous_.clear();
  profile_window_.clear();
  worker_window_.clear();
  ring_.clear();
  next_seq_ = 1;
  if (!options_.path.empty()) {
    out_.open(options_.path, std::ios::trunc);
    if (!out_) {
      PSF_LOG(kWarn, "telemetry")
          << "cannot open telemetry stream " << options_.path
          << "; streaming to memory only";
    }
  }
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { run(); });
}

void SnapshotStreamer::stop() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!running_ || stop_requested_) return;  // not running / another stop
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::unique_lock<std::mutex> lock(mutex_);
  // Final snapshot: short runs still get at least one line, and the last
  // line always reflects the terminal state.
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_tp_)
          .count();
  emit(take_snapshot_locked(uptime_s));
  if (out_.is_open()) out_.close();
  running_ = false;
  stop_requested_ = false;
}

bool SnapshotStreamer::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

std::vector<Snapshot> SnapshotStreamer::recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

Snapshot SnapshotStreamer::snapshot_now() {
  std::lock_guard<std::mutex> lock(mutex_);
  const double uptime_s =
      running_ ? std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_tp_)
                     .count()
               : 0.0;
  Snapshot snapshot = take_snapshot_locked(uptime_s);
  emit(snapshot);
  return snapshot;
}

void SnapshotStreamer::set_watchdog(slo::Watchdog* watchdog) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.watchdog = watchdog;
}

void SnapshotStreamer::run() {
  const auto profile_period =
      std::chrono::milliseconds(options_.profile_period_ms);
  auto next_snapshot_tp =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.snapshot_period_ms);
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (cv_.wait_for(lock, profile_period,
                     [this] { return stop_requested_; })) {
      return;  // stop() takes the final snapshot under its own lock
    }
    sample_profile();
    const auto now = std::chrono::steady_clock::now();
    if (now >= next_snapshot_tp) {
      next_snapshot_tp =
          now + std::chrono::milliseconds(options_.snapshot_period_ms);
      const double uptime_s =
          std::chrono::duration<double>(now - start_tp_).count();
      emit(take_snapshot_locked(uptime_s));
    }
  }
}

void SnapshotStreamer::sample_profile() {
  auto& table = prof::SlotTable::global();
  const std::size_t bound = table.high_water();
  if (worker_window_.size() < bound) worker_window_.resize(bound);
  for (std::size_t i = 0; i < bound; ++i) {
    auto& slot = table.slot(i);
    if (!slot.in_use()) continue;
    worker_window_[i].slot = i;
    ++worker_window_[i].ticks;
    char tag[prof::kMaxTag];
    if (slot.read(tag)) {
      ++worker_window_[i].busy;
      ++profile_window_[tag];
    }
  }
}

Snapshot SnapshotStreamer::take_snapshot_locked(double uptime_s) {
  Snapshot snapshot;
  snapshot.seq = next_seq_++;
  snapshot.uptime_s = uptime_s;

  // Counters relative to the stream-start baseline; deltas vs the previous
  // snapshot. Counters born after start() baseline at zero.
  const auto current = options_.registry->counters();
  for (const auto& [name, value] : current) {
    const auto base_it = baseline_.find(name);
    const std::uint64_t base =
        base_it == baseline_.end() ? 0 : base_it->second;
    const std::uint64_t since_start = value >= base ? value - base : 0;
    snapshot.counters[name] = since_start;
    const auto prev_it = previous_.find(name);
    const std::uint64_t prev = prev_it == previous_.end() ? 0 : prev_it->second;
    snapshot.deltas[name] =
        since_start >= prev ? since_start - prev : 0;
  }
  previous_ = snapshot.counters;

  snapshot.gauges = options_.registry->gauges();
  for (const auto& [name, hist] : options_.registry->histograms()) {
    snapshot.histograms[name] = digest(hist);
  }

  snapshot.profile = std::move(profile_window_);
  profile_window_.clear();
  for (const auto& worker : worker_window_) {
    if (worker.ticks != 0) snapshot.workers.push_back(worker);
  }
  for (auto& worker : worker_window_) {
    worker.busy = 0;
    worker.ticks = 0;
  }
  return snapshot;
}

void SnapshotStreamer::emit(const Snapshot& snapshot) {
  ring_.push_back(snapshot);
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
  if (out_.is_open()) {
    out_ << snapshot.to_json() << "\n";
    out_.flush();
  }
  if (options_.watchdog != nullptr) {
    const auto breaches = options_.watchdog->evaluate(snapshot);
    for (const auto& breach : breaches) {
      PSF_LOG(kWarn, "telemetry")
          << "SLO breach: " << breach.rule << " (observed "
          << breach.value << ")";
      if (out_.is_open()) {
        out_ << slo::breach_json(breach) << "\n";
        out_.flush();
      }
    }
  }
}

// --- process-global streamer -------------------------------------------------

namespace {

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

SnapshotStreamer*& global_slot() {
  static SnapshotStreamer* streamer = nullptr;
  return streamer;
}

}  // namespace

SnapshotStreamer* SnapshotStreamer::global() noexcept {
  std::lock_guard<std::mutex> lock(global_mutex());
  return global_slot();
}

SnapshotStreamer* SnapshotStreamer::ensure_global_from_env() {
  const char* path = std::getenv("PSF_TELEMETRY");
  if (path == nullptr || *path == '\0') return global();
  return ensure_global(path);
}

SnapshotStreamer* SnapshotStreamer::ensure_global(const std::string& path) {
  std::lock_guard<std::mutex> lock(global_mutex());
  SnapshotStreamer*& slot = global_slot();
  if (slot != nullptr) return slot;  // first caller wins
  Options options;
  options.path = path;
  if (const char* period = std::getenv("PSF_TELEMETRY_PERIOD_MS")) {
    const int parsed = std::atoi(period);
    if (parsed > 0) options.snapshot_period_ms = parsed;
  }
  // Leaked on purpose (same as Registry::global()); the atexit hook stops
  // the thread and flushes the stream before static teardown.
  slot = new SnapshotStreamer(options);
  slot->start();
  std::atexit([] {
    SnapshotStreamer* streamer = nullptr;
    {
      std::lock_guard<std::mutex> exit_lock(global_mutex());
      streamer = global_slot();
    }
    if (streamer != nullptr) streamer->stop();
  });
  return slot;
}

}  // namespace psf::telemetry
