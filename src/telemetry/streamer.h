// PSF — Pattern Specification Framework
// psf::telemetry — live metric snapshot streaming (docs/OBSERVABILITY.md,
// "Live telemetry").
//
// The post-mortem observability layers (metrics JSON at exit, causal
// traces) explain a run AFTER it finished. The SnapshotStreamer watches it
// WHILE it runs: a background thread periodically snapshots a metrics
// Registry (the process-global one by default) plus the sampling profiler's
// per-worker occupancy, computes counter deltas against the previous
// snapshot, keeps a bounded ring of recent snapshots in memory, and appends
// each snapshot as one JSON line (schema `psf.telemetry` v1) to the path
// named by $PSF_TELEMETRY / EnvOptions::with_telemetry_path.
//
// Strictly off the hot path: the streamer only READS relaxed atomics and
// mutex-guarded name maps that the workload already maintains; it never
// feeds anything back into the time model, so all virtual times are
// bit-identical with telemetry on or off (pinned by TelemetryDeterminism
// tests at executor widths 1 and 7).
//
// An optional slo::Watchdog is evaluated against every snapshot; breaches
// are appended to the same stream as `"kind":"breach"` lines and counted
// for the caller's exit path (bench/loadgen --slo).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>
#include <condition_variable>

#include "support/metrics.h"

namespace psf::telemetry {

namespace slo {
class Watchdog;
}  // namespace slo

namespace detail {
/// Shared JSONL formatting helpers (deterministic %.17g numbers with
/// non-finite values clamped to the largest finite double, JSON string
/// escaping). Used by Snapshot::to_json and slo::breach_json.
[[nodiscard]] std::string json_escape(std::string_view text);
[[nodiscard]] std::string json_num(double value);
}  // namespace detail

/// Quantile digest of one histogram at snapshot time — the bucket array is
/// collapsed to the stats an operator (or SLO rule) actually reads, keeping
/// JSONL lines small.
struct HistogramStat {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// One timestamped observation of the watched registry + profiler.
/// Counters are reported RELATIVE TO STREAM START (a warm-up phase before
/// start() does not pollute SLO rules like `pool_misses==0`); `deltas`
/// holds the change since the previous snapshot (jobs/sec etc. derive from
/// it); gauges and histograms are instantaneous/cumulative views.
struct Snapshot {
  std::uint64_t seq = 0;     ///< 1-based snapshot number within the stream
  double uptime_s = 0.0;     ///< monotonic seconds since stream start
  std::map<std::string, std::uint64_t> counters;  ///< since stream start
  std::map<std::string, std::uint64_t> deltas;    ///< since prev snapshot
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStat> histograms;
  std::map<std::string, std::uint64_t> profile;   ///< sampler tag ticks (window)
  /// Per-worker occupancy over the window: busy sampler ticks out of total.
  struct WorkerSample {
    std::size_t slot = 0;
    std::uint64_t busy = 0;
    std::uint64_t ticks = 0;
  };
  std::vector<WorkerSample> workers;

  /// One JSONL line, schema psf.telemetry v1, kind "snapshot".
  /// Deterministic key order; validated by
  /// scripts/validate_metrics.py --kind telemetry.
  [[nodiscard]] std::string to_json() const;
};

/// Background snapshot/sampling thread. Construct, start(), and the stream
/// runs until stop() (or destruction). All public methods are thread-safe.
class SnapshotStreamer {
 public:
  struct Options {
    /// Snapshot cadence. The final snapshot on stop() always fires, so
    /// short runs still produce at least one line.
    int snapshot_period_ms = 100;
    /// Profiler sampling cadence (several samples per snapshot window).
    int profile_period_ms = 5;
    /// Bounded in-memory history for recent()/psf-top attachment.
    std::size_t ring_capacity = 256;
    /// JSONL output path; empty = in-memory ring only.
    std::string path;
    /// Registry to watch; nullptr = metrics::Registry::global().
    metrics::Registry* registry = nullptr;
    /// Evaluated per snapshot; breaches land in the stream. Not owned.
    slo::Watchdog* watchdog = nullptr;

    Options& with_snapshot_period_ms(int value) {
      snapshot_period_ms = value;
      return *this;
    }
    Options& with_profile_period_ms(int value) {
      profile_period_ms = value;
      return *this;
    }
    Options& with_ring_capacity(std::size_t value) {
      ring_capacity = value;
      return *this;
    }
    Options& with_path(std::string value) {
      path = std::move(value);
      return *this;
    }
    Options& with_registry(metrics::Registry* value) {
      registry = value;
      return *this;
    }
    Options& with_watchdog(slo::Watchdog* value) {
      watchdog = value;
      return *this;
    }
  };

  explicit SnapshotStreamer(Options options);
  ~SnapshotStreamer();

  SnapshotStreamer(const SnapshotStreamer&) = delete;
  SnapshotStreamer& operator=(const SnapshotStreamer&) = delete;

  /// Baseline the counters, truncate/open the output file, launch the
  /// background thread. Idempotent while running.
  void start();

  /// Take a final snapshot, flush, join the thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const;

  /// Copy of the in-memory ring, oldest first.
  [[nodiscard]] std::vector<Snapshot> recent() const;

  /// Take one snapshot immediately (also appended to ring/file/watchdog).
  Snapshot snapshot_now();

  /// Swap the watchdog evaluated on subsequent snapshots (nullptr
  /// detaches). Lets a caller attach rules to an already-armed global
  /// streamer (bench/loadgen --slo).
  void set_watchdog(slo::Watchdog* watchdog);

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// The process-wide streamer armed by $PSF_TELEMETRY (or the first
  /// EnvOptions::with_telemetry_path), or nullptr when none is armed.
  static SnapshotStreamer* global() noexcept;

  /// Arm the global streamer from $PSF_TELEMETRY if set and not yet armed.
  /// Called by RuntimeEnv and serve::Server construction, so any entry
  /// point picks the variable up. Returns the global streamer or nullptr.
  static SnapshotStreamer* ensure_global_from_env();

  /// Arm the global streamer at `path` (first caller wins; later calls
  /// with any path return the existing streamer). The streamer is stopped
  /// and flushed at process exit.
  static SnapshotStreamer* ensure_global(const std::string& path);

 private:
  void run();
  Snapshot take_snapshot_locked(double uptime_s);
  void sample_profile();
  void emit(const Snapshot& snapshot);

  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread thread_;
  std::chrono::steady_clock::time_point start_tp_;
  std::uint64_t next_seq_ = 1;
  std::map<std::string, std::uint64_t> baseline_;  ///< counters at start()
  std::map<std::string, std::uint64_t> previous_;  ///< counters last snapshot
  std::map<std::string, std::uint64_t> profile_window_;
  std::vector<Snapshot::WorkerSample> worker_window_;
  std::deque<Snapshot> ring_;
  std::ofstream out_;
};

}  // namespace psf::telemetry
