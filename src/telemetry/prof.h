// PSF — Pattern Specification Framework
// psf::telemetry::prof — the executor sampling profiler's publication side
// (docs/OBSERVABILITY.md, "Live telemetry").
//
// Each thread that executes pattern work publishes its CURRENT task tag (a
// short component label like "st.sweep" or "gr.chunk") into a per-thread
// seqlock slot. Publication is wait-free and costs a handful of relaxed
// atomic stores — cheap enough for per-block launch loops. The
// SnapshotStreamer's sampler thread reads every slot periodically and
// aggregates tag occupancy into a per-component time profile, so an
// operator sees WHERE the executor spends its time without any
// instrumentation on the virtual-time model (vtimes stay bit-identical
// whether or not a sampler is attached).
//
// The seqlock protocol: the owning thread is the only writer. It bumps the
// version to odd, stores the tag bytes, bumps to even. A reader retries
// until it observes the same even version on both sides of its copy. All
// accesses go through atomics, so the race is benign under TSan too.
//
// Use via the RAII macro (compiled out with -DPSF_DISABLE_METRICS):
//
//   void run_chunk() {
//     PSF_PROF_SCOPE("gr.chunk");   // publishes, restores previous on exit
//     ...
//   }
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace psf::telemetry::prof {

/// Longest published tag including the terminating NUL; longer tags are
/// truncated.
inline constexpr std::size_t kMaxTag = 32;

/// Slot pool size — the high-water mark of CONCURRENT publishing threads
/// (executor workers + rank threads + runners). Threads release their slot
/// at exit, so thousands of short-lived rank threads recycle a few slots.
/// When the pool is exhausted a thread simply publishes nothing.
inline constexpr std::size_t kMaxSlots = 256;

/// One thread's published tag. Writer: the owning thread only. Readers
/// (the sampler) copy under the seqlock version check.
class TagSlot {
 public:
  /// Publish `tag` (nullptr or "" = idle). Owner thread only.
  void publish(const char* tag) noexcept;

  /// Copy the current tag into `out` (NUL-terminated, kMaxTag bytes).
  /// Returns false when the slot is idle (empty tag). Retries while the
  /// owner is mid-publish; wait-free for the owner.
  bool read(char (&out)[kMaxTag]) const noexcept;

  /// Owner-side copy of the current tag, no seqlock needed (the owner is
  /// the only writer). Used to save/restore around nested scopes.
  void read_own(char (&out)[kMaxTag]) const noexcept;

  [[nodiscard]] bool in_use() const noexcept {
    return in_use_.load(std::memory_order_acquire);
  }

 private:
  friend class SlotTable;
  std::atomic<std::uint32_t> seq_{0};
  std::array<std::atomic<char>, kMaxTag> tag_{};
  std::atomic<bool> in_use_{false};
};

/// The process-wide slot pool. Threads acquire lazily on first publish and
/// release at thread exit; the sampler iterates the registered prefix.
class SlotTable {
 public:
  static SlotTable& global() noexcept;

  /// Claim a free slot, or nullptr when the pool is exhausted.
  TagSlot* acquire() noexcept;
  /// Return a slot to the pool (clears its tag first).
  void release(TagSlot* slot) noexcept;

  /// Slots ever registered (high-water index bound for iteration).
  [[nodiscard]] std::size_t high_water() const noexcept {
    return high_water_.load(std::memory_order_acquire);
  }
  [[nodiscard]] TagSlot& slot(std::size_t index) noexcept {
    return slots_[index];
  }

 private:
  std::array<TagSlot, kMaxSlots> slots_{};
  std::atomic<std::size_t> high_water_{0};
};

/// The calling thread's slot, acquired on first use and released at thread
/// exit. nullptr when the pool is exhausted.
TagSlot* this_thread_slot() noexcept;

/// Eagerly register the calling thread (an executor worker) so it shows up
/// in occupancy reports as idle even before its first tagged task.
void register_this_thread() noexcept;

/// RAII tag publication: publishes `tag` on entry, restores the previous
/// tag on exit (scopes nest — an inner "st.exchange" shadows the outer
/// "st.sweep" for its duration).
class Scope {
 public:
  explicit Scope(const char* tag) noexcept;
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
  ~Scope();

 private:
  TagSlot* slot_;
  char previous_[kMaxTag];
};

}  // namespace psf::telemetry::prof

// Token-pasting helper so multiple scopes coexist in one block.
#define PSF_PROF_SCOPE_CAT2(a, b) a##b
#define PSF_PROF_SCOPE_CAT(a, b) PSF_PROF_SCOPE_CAT2(a, b)

#ifndef PSF_DISABLE_METRICS
#define PSF_PROF_SCOPE(tag)                       \
  ::psf::telemetry::prof::Scope PSF_PROF_SCOPE_CAT( \
      psf_prof_scope_, __LINE__)(tag)
#else
#define PSF_PROF_SCOPE(tag) \
  do {                      \
  } while (0)
#endif
