#include "telemetry/prof.h"

#include <cstring>

namespace psf::telemetry::prof {

void TagSlot::publish(const char* tag) noexcept {
  // Seqlock write: odd while the bytes are torn, even when consistent.
  seq_.fetch_add(1, std::memory_order_release);
  std::size_t i = 0;
  if (tag != nullptr) {
    for (; i + 1 < kMaxTag && tag[i] != '\0'; ++i) {
      tag_[i].store(tag[i], std::memory_order_relaxed);
    }
  }
  tag_[i].store('\0', std::memory_order_relaxed);
  seq_.fetch_add(1, std::memory_order_release);
}

bool TagSlot::read(char (&out)[kMaxTag]) const noexcept {
  for (;;) {
    const std::uint32_t before = seq_.load(std::memory_order_acquire);
    if ((before & 1u) != 0) continue;  // mid-publish; retry
    for (std::size_t i = 0; i < kMaxTag; ++i) {
      out[i] = tag_[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) == before) {
      out[kMaxTag - 1] = '\0';
      return out[0] != '\0';
    }
  }
}

void TagSlot::read_own(char (&out)[kMaxTag]) const noexcept {
  for (std::size_t i = 0; i < kMaxTag; ++i) {
    out[i] = tag_[i].load(std::memory_order_relaxed);
  }
  out[kMaxTag - 1] = '\0';
}

SlotTable& SlotTable::global() noexcept {
  // Leaked on purpose: slots are touched from worker threads that may
  // outlive main()'s statics (same rationale as metrics::Registry::global).
  static SlotTable* table = new SlotTable();
  return *table;
}

TagSlot* SlotTable::acquire() noexcept {
  for (std::size_t i = 0; i < kMaxSlots; ++i) {
    bool expected = false;
    if (slots_[i].in_use_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      // Grow the iteration bound monotonically to cover this slot.
      std::size_t hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 && !high_water_.compare_exchange_weak(
                               hw, i + 1, std::memory_order_acq_rel)) {
      }
      return &slots_[i];
    }
  }
  return nullptr;
}

void SlotTable::release(TagSlot* slot) noexcept {
  if (slot == nullptr) return;
  slot->publish(nullptr);
  slot->in_use_.store(false, std::memory_order_release);
}

namespace {

/// Thread-local slot holder: acquires lazily, releases at thread exit so
/// short-lived rank threads recycle the pool.
struct SlotHolder {
  TagSlot* slot = nullptr;
  bool tried = false;

  TagSlot* get() noexcept {
    if (!tried) {
      tried = true;
      slot = SlotTable::global().acquire();
    }
    return slot;
  }

  ~SlotHolder() { SlotTable::global().release(slot); }
};

thread_local SlotHolder tls_slot_holder;

}  // namespace

TagSlot* this_thread_slot() noexcept { return tls_slot_holder.get(); }

void register_this_thread() noexcept { (void)this_thread_slot(); }

Scope::Scope(const char* tag) noexcept : slot_(this_thread_slot()) {
  previous_[0] = '\0';
  if (slot_ == nullptr) return;
  slot_->read_own(previous_);
  slot_->publish(tag);
}

Scope::~Scope() {
  if (slot_ != nullptr) slot_->publish(previous_);
}

}  // namespace psf::telemetry::prof
