#include "telemetry/slo.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace psf::telemetry::slo {

namespace {

using telemetry::detail::json_escape;
using telemetry::detail::json_num;

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  return text;
}

/// Expand the serving-rule aliases; any other selector passes through.
std::string_view expand_alias(std::string_view selector) {
  if (selector == "p50_latency_ms") return "serve.latency_ms.p50";
  if (selector == "p99_latency_ms") return "serve.latency_ms.p99";
  if (selector == "max_latency_ms") return "serve.latency_ms.max";
  if (selector == "queue_depth") return "serve.queue_depth";
  if (selector == "pool_misses") return "support.pool.misses";
  if (selector == "retries") return "serve.retries";
  if (selector == "sheds") return "serve.sheds";
  if (selector == "expired") return "serve.expired";
  if (selector == "breaker_open") return "serve.breaker_open";
  return selector;
}

/// Histogram stat suffix -> accessor; nullopt when `stat` is not a stat.
std::optional<double> histogram_stat(const HistogramStat& digest,
                                     std::string_view stat) {
  if (stat == "count") return static_cast<double>(digest.count);
  if (digest.count == 0) {
    // An empty histogram has no meaningful value stats.
    return stat == "sum" ? std::optional<double>(0.0) : std::nullopt;
  }
  if (stat == "sum") return digest.sum;
  if (stat == "min") return digest.min;
  if (stat == "max") return digest.max;
  if (stat == "mean") {
    return digest.sum / static_cast<double>(digest.count);
  }
  if (stat == "p50") return digest.p50;
  if (stat == "p90") return digest.p90;
  if (stat == "p99") return digest.p99;
  return std::nullopt;
}

}  // namespace

bool Rule::holds(double value) const noexcept {
  switch (op) {
    case Op::kLt: return value < bound;
    case Op::kLe: return value <= bound;
    case Op::kGt: return value > bound;
    case Op::kGe: return value >= bound;
    case Op::kEq: return value == bound;
    case Op::kNe: return value != bound;
  }
  return true;
}

support::StatusOr<std::vector<Rule>> parse_rules(std::string_view spec) {
  std::vector<Rule> rules;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view raw = trim(spec.substr(begin, end - begin));
    begin = end + 1;
    if (raw.empty()) continue;

    // Find the operator: two-char forms first so "<=" never parses as "<".
    static constexpr struct {
      std::string_view token;
      Op op;
    } kOps[] = {
        {"<=", Op::kLe}, {">=", Op::kGe}, {"==", Op::kEq},
        {"!=", Op::kNe}, {"<", Op::kLt},  {">", Op::kGt},
    };
    std::size_t op_pos = std::string_view::npos;
    std::size_t op_len = 0;
    Op op = Op::kLt;
    for (const auto& candidate : kOps) {
      const std::size_t pos = raw.find(candidate.token);
      if (pos != std::string_view::npos &&
          (op_pos == std::string_view::npos || pos < op_pos ||
           (pos == op_pos && candidate.token.size() > op_len))) {
        op_pos = pos;
        op_len = candidate.token.size();
        op = candidate.op;
      }
    }
    if (op_pos == std::string_view::npos) {
      return support::Status::invalid_argument(
          "SLO rule \"" + std::string(raw) +
          "\" has no comparison operator; expected METRIC OP NUMBER, e.g. "
          "\"p99_latency_ms<250\" (ops: < <= > >= == !=)");
    }
    const std::string_view metric = trim(raw.substr(0, op_pos));
    const std::string_view number = trim(raw.substr(op_pos + op_len));
    if (metric.empty()) {
      return support::Status::invalid_argument(
          "SLO rule \"" + std::string(raw) + "\" is missing the metric name");
    }
    if (number.empty()) {
      return support::Status::invalid_argument(
          "SLO rule \"" + std::string(raw) + "\" is missing the bound");
    }
    const std::string number_str(number);
    char* parse_end = nullptr;
    const double bound = std::strtod(number_str.c_str(), &parse_end);
    if (parse_end == number_str.c_str() || *parse_end != '\0') {
      return support::Status::invalid_argument(
          "SLO rule \"" + std::string(raw) + "\": bound \"" + number_str +
          "\" is not a number");
    }
    Rule rule;
    rule.metric = std::string(metric);
    rule.op = op;
    rule.bound = bound;
    rule.text = rule.metric + std::string(to_string(op)) + number_str;
    rules.push_back(std::move(rule));
  }
  return rules;
}

std::optional<double> resolve(const Snapshot& snapshot,
                              std::string_view selector) {
  const std::string_view expanded = expand_alias(trim(selector));

  // `name.stat` histogram selector: try the longest name first so dotted
  // metric names ("serve.latency_ms.p99") split at the final dot.
  const std::size_t dot = expanded.rfind('.');
  if (dot != std::string_view::npos && dot + 1 < expanded.size()) {
    const std::string name(expanded.substr(0, dot));
    const auto hist_it = snapshot.histograms.find(name);
    if (hist_it != snapshot.histograms.end()) {
      const auto value =
          histogram_stat(hist_it->second, expanded.substr(dot + 1));
      if (value.has_value()) return value;
    }
  }

  const std::string name(expanded);
  const auto gauge_it = snapshot.gauges.find(name);
  if (gauge_it != snapshot.gauges.end()) return gauge_it->second;
  const auto counter_it = snapshot.counters.find(name);
  if (counter_it != snapshot.counters.end()) {
    return static_cast<double>(counter_it->second);
  }
  return std::nullopt;
}

std::string breach_json(const Breach& breach) {
  std::ostringstream json;
  json << "{\"schema\":\"psf.telemetry\",\"version\":1,"
       << "\"kind\":\"breach\",\"seq\":" << breach.seq
       << ",\"uptime_s\":" << json_num(breach.uptime_s) << ",\"rule\":\""
       << json_escape(breach.rule) << "\",\"metric\":\""
       << json_escape(breach.metric) << "\",\"value\":"
       << json_num(breach.value) << ",\"bound\":" << json_num(breach.bound)
       << "}";
  return json.str();
}

std::vector<Breach> Watchdog::evaluate(const Snapshot& snapshot) {
  std::vector<Breach> found;
  for (const auto& rule : rules_) {
    const auto value = resolve(snapshot, rule.metric);
    if (!value.has_value()) continue;  // no data is not a breach
    if (rule.holds(*value)) continue;
    Breach breach;
    breach.seq = snapshot.seq;
    breach.uptime_s = snapshot.uptime_s;
    breach.rule = rule.text;
    breach.metric = rule.metric;
    breach.value = *value;
    breach.bound = rule.bound;
    found.push_back(std::move(breach));
  }
  if (!found.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_breaches_ += found.size();
    for (const auto& breach : found) {
      if (retained_.size() < kMaxRetained) retained_.push_back(breach);
    }
  }
  return found;
}

std::uint64_t Watchdog::breach_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_breaches_;
}

std::vector<Breach> Watchdog::breaches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retained_;
}

std::string Watchdog::report_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream json;
  json << "{\"schema\":\"psf.telemetry\",\"version\":1,"
       << "\"kind\":\"slo_report\",\"rules\":" << rules_.size()
       << ",\"breaches\":" << total_breaches_ << ",\"events\":[";
  bool first = true;
  for (const auto& breach : retained_) {
    if (!first) json << ",";
    first = false;
    json << breach_json(breach);
  }
  json << "]}";
  return json.str();
}

}  // namespace psf::telemetry::slo
