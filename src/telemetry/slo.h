// PSF — Pattern Specification Framework
// psf::telemetry::slo — declarative service-level-objective rules evaluated
// against live telemetry snapshots (docs/OBSERVABILITY.md, "Live
// telemetry").
//
// Rule grammar (parsed from --slo / $PSF_SLO):
//
//   spec   := rule (';' rule)*
//   rule   := metric op number
//   op     := '<' | '<=' | '>' | '>=' | '==' | '!='
//   metric := alias | name | name '.' stat
//   stat   := 'p50' | 'p90' | 'p99' | 'max' | 'min' | 'mean'
//           | 'count' | 'sum'
//
// A bare `name` resolves against the snapshot's gauges first, then its
// counters (counted SINCE STREAM START, so a warm-up phase cannot trip
// `pool_misses==0`). A `name.stat` selector reads the named histogram's
// digest. Aliases keep the common serving rules short:
//
//   p50_latency_ms  -> serve.latency_ms.p50
//   p99_latency_ms  -> serve.latency_ms.p99
//   max_latency_ms  -> serve.latency_ms.max
//   queue_depth     -> serve.queue_depth        (gauge)
//   pool_misses     -> support.pool.misses      (counter since start)
//   retries         -> serve.retries            (counter since start)
//   sheds           -> serve.sheds              (counter since start)
//   expired         -> serve.expired            (counter since start)
//   breaker_open    -> serve.breaker_open       (counter since start)
//
// A rule whose metric is absent from a snapshot (or whose histogram is
// still empty) is skipped for that snapshot — "no data" is not a breach.
// Every violated rule produces one structured Breach event, appended to
// the telemetry stream as a `"kind":"breach"` JSONL line and retained for
// the caller's structured report / nonzero exit path.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"
#include "telemetry/streamer.h"

namespace psf::telemetry::slo {

enum class Op : std::uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

[[nodiscard]] constexpr std::string_view to_string(Op op) noexcept {
  switch (op) {
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
  }
  return "?";
}

/// One parsed rule: `metric op bound`.
struct Rule {
  std::string metric;  ///< selector as written (aliases not yet expanded)
  Op op = Op::kLt;
  double bound = 0.0;
  std::string text;    ///< normalized rule text, for reports

  [[nodiscard]] bool holds(double value) const noexcept;
};

/// Parse a rule spec (see grammar above). Whitespace around tokens is
/// ignored; an empty spec yields an empty rule set. Errors name the
/// offending rule and position.
[[nodiscard]] support::StatusOr<std::vector<Rule>> parse_rules(
    std::string_view spec);

/// Resolve `selector` against `snapshot` (aliases, gauges, counters,
/// histogram stats). nullopt = no such metric / histogram still empty.
[[nodiscard]] std::optional<double> resolve(const Snapshot& snapshot,
                                            std::string_view selector);

/// One rule violation at one snapshot.
struct Breach {
  std::uint64_t seq = 0;      ///< snapshot sequence number
  double uptime_s = 0.0;      ///< stream uptime at detection
  std::string rule;           ///< normalized rule text
  std::string metric;         ///< resolved selector
  double value = 0.0;         ///< observed value
  double bound = 0.0;         ///< rule bound
};

/// One breach as a psf.telemetry v1 JSONL line (kind "breach").
[[nodiscard]] std::string breach_json(const Breach& breach);

/// Evaluates a rule set against successive snapshots and retains the
/// breach log. Thread-safe: the streamer thread evaluates, any thread may
/// read counts/reports.
class Watchdog {
 public:
  explicit Watchdog(std::vector<Rule> rules) : rules_(std::move(rules)) {}

  /// Check every rule against `snapshot`; record and return the breaches.
  std::vector<Breach> evaluate(const Snapshot& snapshot);

  [[nodiscard]] std::uint64_t breach_count() const;
  /// The retained breach log (bounded to the first kMaxRetained breaches).
  [[nodiscard]] std::vector<Breach> breaches() const;
  [[nodiscard]] const std::vector<Rule>& rules() const noexcept {
    return rules_;
  }

  /// Structured report: {"schema":"psf.telemetry","version":1,
  /// "kind":"slo_report","rules":N,"breaches":N,"events":[...]}. loadgen
  /// prints this on exit when any rule fired.
  [[nodiscard]] std::string report_json() const;

  static constexpr std::size_t kMaxRetained = 1024;

 private:
  const std::vector<Rule> rules_;
  mutable std::mutex mutex_;
  std::uint64_t total_breaches_ = 0;
  std::vector<Breach> retained_;
};

}  // namespace psf::telemetry::slo
