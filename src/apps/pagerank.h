// PSF — Pattern Specification Framework
// PageRank: a demonstration that the irregular-reduction pattern covers
// graph analytics beyond the paper's scientific workloads (the paper argues
// the three patterns cover 16 of 23 Rodinia benchmarks; unstructured-grid
// style graph kernels are this pattern).
//
// Each directed edge (u, v) contributes rank[u] / out_degree[u] to v; the
// per-node reduction accumulates contributions, and update_nodedata applies
// the damping rule rank' = (1-d)/N + d * sum.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "minimpi/communicator.h"
#include "pattern/ireduction.h"
#include "pattern/runtime_env.h"

namespace psf::apps::pagerank {

struct Params {
  std::size_t num_pages = 2048;
  std::size_t num_links = 16384;
  int iterations = 10;
  double damping = 0.85;
  std::uint64_t seed = 13;
};

/// Node record: current rank and the page's out-degree.
struct Page {
  double rank = 0.0;
  double out_degree = 0.0;
};

/// Synthetic web graph with skewed (preferential-attachment-flavored)
/// in-degree distribution; returned edges are DIRECTED u -> v.
std::vector<pattern::Edge> generate_links(const Params& params);

/// Initial page records (uniform rank, degrees from `links`).
std::vector<Page> initial_pages(const Params& params,
                                std::span<const pattern::Edge> links);

struct Result {
  std::vector<double> ranks;  ///< final rank per page
  double rank_sum = 0.0;      ///< should stay ~1 (dangling mass excepted)
  double vtime = 0.0;
};

/// Framework implementation. Collective; `pages` is the shared global node
/// array.
Result run_framework(minimpi::Communicator& comm,
                     const pattern::EnvOptions& options, const Params& params,
                     std::span<Page> pages,
                     std::span<const pattern::Edge> links);

/// Single-core reference.
Result run_sequential(const Params& params, std::span<Page> pages,
                      std::span<const pattern::Edge> links);

}  // namespace psf::apps::pagerank
