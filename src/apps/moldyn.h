// PSF — Pattern Specification Framework
// Moldyn (paper Sections II-B, IV-A): molecular dynamics over an explicit
// interaction list. The force kernel (CF) is an irregular reduction over the
// edges; kinetic energy (KE) and average velocity (AV) are generalized
// reductions over the nodes — the paper's multi-pattern case study.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "minimpi/communicator.h"
#include "pattern/ireduction.h"
#include "pattern/runtime_env.h"

namespace psf::apps::moldyn {

struct Params {
  std::size_t num_nodes = 4096;
  std::size_t num_edges = 32768;
  int iterations = 10;
  std::uint64_t seed = 7;
  double cutoff = 40.0;   ///< interaction distance threshold
  double dt = 1.0e-3;     ///< integration step
  double box = 100.0;     ///< x/y domain edge length
  /// z-elongation of the domain (z is the partitioned dimension). Benches
  /// use aspect > 1 so a scaled-down graph keeps the paper's surface-to-
  /// volume (cross-edge) ratio under 1-D partitioning.
  double aspect = 1.0;
};

/// Node record: position and velocity of one molecule.
struct Molecule {
  double pos[3] = {};
  double vel[3] = {};
};

/// Reduction value for CF: accumulated force on a node.
struct Force {
  double f[3] = {};
};

/// Parameter block for the CF kernel.
struct ForceParameter {
  double cutoff = 0.0;
  double dt = 0.0;
};

/// Random molecules in the box with small random velocities.
std::vector<Molecule> generate_molecules(const Params& params);
/// Random interaction pairs (the synthetic 130M-edge indirection array).
std::vector<pattern::Edge> generate_edges(const Params& params);

struct Result {
  double kinetic_energy = 0.0;   ///< final KE (generalized reduction)
  double avg_velocity[3] = {};   ///< final AV (generalized reduction)
  double position_checksum = 0.0;
  double vtime = 0.0;
  /// Post-adaptation per-iteration virtual time (steady state, after the
  /// profiling iteration repartitioned the devices). Benches extrapolate
  /// the paper's long runs from this.
  double steady_vtime = 0.0;
};

/// Framework implementation (CF per iteration, then KE and AV once at the
/// end). Collective; `molecules` is the mutable global node array.
Result run_framework(minimpi::Communicator& comm,
                     const pattern::EnvOptions& options, const Params& params,
                     std::span<Molecule> molecules,
                     std::span<const pattern::Edge> edges);

/// Single-core reference.
Result run_sequential(const Params& params, std::span<Molecule> molecules,
                      std::span<const pattern::Edge> edges);

}  // namespace psf::apps::moldyn
