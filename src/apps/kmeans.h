// PSF — Pattern Specification Framework
// Kmeans (paper Section IV-A): the generalized-reduction evaluation app.
// Points are 3-D floats; each iteration assigns points to the nearest of k
// centers and recomputes the centers from the per-cluster sums.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "minimpi/communicator.h"
#include "pattern/runtime_env.h"

namespace psf::apps::kmeans {

inline constexpr int kDims = 3;

struct Params {
  std::size_t num_points = 100000;
  int num_clusters = 40;
  int iterations = 1;
  std::uint64_t seed = 42;
};

/// Per-cluster accumulator: the reduction value.
struct ClusterAccum {
  double sum[kDims] = {};
  double count = 0;
};

/// Parameter block passed through the runtime to the emit function.
struct EmitParameter {
  const double* centers = nullptr;
  int num_clusters = 0;
};

/// Synthesize `num_points` points drawn from `num_clusters` Gaussian blobs
/// (the synthetic stand-in for the paper's 200M-point dataset).
std::vector<float> generate_points(const Params& params);

/// Deterministic initial centers (the first k points).
std::vector<double> initial_centers(const Params& params,
                                    std::span<const float> points);

struct Result {
  std::vector<double> centers;  ///< k * kDims, row per cluster
  double vtime = 0.0;           ///< virtual seconds for all iterations
  double steady_vtime = 0.0;    ///< virtual seconds per iteration
};

/// Framework implementation: call inside a World rank. Collective; every
/// rank returns the same centers.
Result run_framework(minimpi::Communicator& comm,
                     const pattern::EnvOptions& options, const Params& params,
                     std::span<const float> points);

/// Result of the monitored (assignment + per-iteration inertia) pipeline.
struct MonitoredResult {
  std::vector<double> centers;  ///< k * kDims, row per cluster
  std::vector<double> inertia;  ///< per iteration: sum of squared distances
                                ///< to the assigned (pre-update) center
  double vtime = 0.0;
  double steady_vtime = 0.0;
};

/// Framework implementation that also tracks the clustering inertia every
/// iteration. With `fused` a single generalized-reduction pass accumulates
/// cluster sums AND inertia (inertia staged under the reserved key
/// `num_clusters`), paying one combine per iteration; without, the
/// reference sequence runs a second emit pass + combine for the inertia.
/// Centers and inertia are bit-identical between the two modes; only the
/// virtual time differs. Collective.
MonitoredResult run_framework_monitored(minimpi::Communicator& comm,
                                        const pattern::EnvOptions& options,
                                        const Params& params,
                                        std::span<const float> points,
                                        bool fused);

/// Single-core reference implementation (ground truth for tests and the
/// speedup baseline).
Result run_sequential(const Params& params, std::span<const float> points);

}  // namespace psf::apps::kmeans
