// PSF — Pattern Specification Framework
// Sobel edge detection (paper Section IV-A): a 9-point 2-D stencil on a
// single-precision image, iterated to match the paper's 15-sweep run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "minimpi/communicator.h"
#include "pattern/runtime_env.h"

namespace psf::apps::sobel {

struct Params {
  std::size_t height = 512;
  std::size_t width = 512;
  int iterations = 15;
  std::uint64_t seed = 5;
};

/// Synthetic image: smooth gradients with superimposed shapes (edges for
/// the detector to find).
std::vector<float> generate_image(const Params& params);

struct Result {
  std::vector<float> image;  ///< final global grid
  double checksum = 0.0;
  double vtime = 0.0;
  /// Post-adaptation per-iteration virtual time (steady state, after the
  /// profiling iteration repartitioned the devices). Benches extrapolate
  /// the paper's long runs from this.
  double steady_vtime = 0.0;
};

/// Framework implementation (StencilRuntime). Collective; every rank
/// returns the assembled global image.
Result run_framework(minimpi::Communicator& comm,
                     const pattern::EnvOptions& options, const Params& params,
                     std::span<const float> image);

/// Single-core reference.
Result run_sequential(const Params& params, std::span<const float> image);

}  // namespace psf::apps::sobel
