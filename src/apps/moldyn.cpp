#include "apps/moldyn.h"

#include <cmath>

#include "pattern/api.h"
#include "support/rng.h"

namespace psf::apps::moldyn {

namespace {

// [psf-user-code-begin]
/// Pairwise interaction: a short-range repulsive spring. Returns true and
/// fills `force` (acting on `a`) when the pair is within the cutoff.
inline bool pair_force(const Molecule& a, const Molecule& b, double cutoff,
                       double* force) {
  double delta[3];
  double dist2 = 0.0;
  for (int d = 0; d < 3; ++d) {
    delta[d] = a.pos[d] - b.pos[d];
    dist2 += delta[d] * delta[d];
  }
  const double dist = std::sqrt(dist2);
  if (dist >= cutoff || dist <= 1.0e-9) return false;
  const double scale = 0.01 * (cutoff - dist) / dist;
  for (int d = 0; d < 3; ++d) force[d] = scale * delta[d];
  return true;
}

/// CF edge compute (paper Listing 1, force_cmpt): one interaction pair;
/// inserts equal and opposite forces for the endpoints this partition owns.
DEVICE void force_cmpt(pattern::ReductionObject* obj,
                       const pattern::EdgeView& edge,
                       const void* /*edge_data*/, const void* node_data,
                       const void* parameter) {
  const auto* param = static_cast<const ForceParameter*>(parameter);
  const auto* molecules = static_cast<const Molecule*>(node_data);
  double f[3];
  if (!pair_force(molecules[edge.node[0]], molecules[edge.node[1]],
                  param->cutoff, f)) {
    return;
  }
  Force force;
  if (edge.update[0]) {
    for (int d = 0; d < 3; ++d) force.f[d] = f[d];
    obj->insert(edge.node[0], &force);
  }
  if (edge.update[1]) {
    for (int d = 0; d < 3; ++d) force.f[d] = -f[d];
    obj->insert(edge.node[1], &force);
  }
}

/// CF node reduce (force_reduce): plain accumulation.
DEVICE void force_reduce(void* dst, const void* src) {
  auto* a = static_cast<Force*>(dst);
  const auto* b = static_cast<const Force*>(src);
  for (int d = 0; d < 3; ++d) a->f[d] += b->f[d];
}

/// Velocity/position integration applied per node by update_nodedata.
DEVICE void integrate(void* node_data, const void* value,
                      const void* parameter) {
  const auto* param = static_cast<const ForceParameter*>(parameter);
  auto* molecule = static_cast<Molecule*>(node_data);
  if (value != nullptr) {
    const auto* force = static_cast<const Force*>(value);
    for (int d = 0; d < 3; ++d) molecule->vel[d] += force->f[d] * param->dt;
  }
  for (int d = 0; d < 3; ++d) molecule->pos[d] += molecule->vel[d] * param->dt;
}

/// KE emit (ke_emit): one molecule's kinetic energy into key 0.
DEVICE void ke_emit(pattern::ReductionObject* obj, const void* input,
                    std::size_t /*index*/, const void* /*parameter*/) {
  const auto* molecule = static_cast<const Molecule*>(input);
  double ke = 0.0;
  for (int d = 0; d < 3; ++d) ke += molecule->vel[d] * molecule->vel[d];
  ke *= 0.5;
  obj->insert(0, &ke);
}

DEVICE void ke_reduce(void* dst, const void* src) {
  *static_cast<double*>(dst) += *static_cast<const double*>(src);
}

/// AV accumulator and functions (av_emit / av_reduce).
struct VelAccum {
  double sum[3] = {};
  double count = 0;
};

DEVICE void av_emit(pattern::ReductionObject* obj, const void* input,
                    std::size_t /*index*/, const void* /*parameter*/) {
  const auto* molecule = static_cast<const Molecule*>(input);
  VelAccum accum;
  for (int d = 0; d < 3; ++d) accum.sum[d] = molecule->vel[d];
  accum.count = 1;
  obj->insert(0, &accum);
}

DEVICE void av_reduce(void* dst, const void* src) {
  auto* a = static_cast<VelAccum*>(dst);
  const auto* b = static_cast<const VelAccum*>(src);
  for (int d = 0; d < 3; ++d) a->sum[d] += b->sum[d];
  a->count += b->count;
}

}  // namespace
// [psf-user-code-end]

std::vector<Molecule> generate_molecules(const Params& params) {
  // Jittered simple-cubic lattice in a z-elongated box, ordered z-major:
  // index locality equals spatial locality, so 1-D block partitions get
  // mesh-like surface-to-volume cross-edge fractions.
  support::Xoshiro256 rng(params.seed);
  const auto side_xy = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(
             std::cbrt(static_cast<double>(params.num_nodes) /
                       params.aspect))));
  const double spacing = params.box / static_cast<double>(side_xy);
  std::vector<Molecule> molecules(params.num_nodes);
  for (std::size_t i = 0; i < molecules.size(); ++i) {
    const std::size_t x = i % side_xy;
    const std::size_t y = (i / side_xy) % side_xy;
    const std::size_t z = i / (side_xy * side_xy);
    molecules[i].pos[0] =
        (static_cast<double>(z) + 0.5 + 0.2 * rng.next_normal()) * spacing;
    molecules[i].pos[1] =
        (static_cast<double>(y) + 0.5 + 0.2 * rng.next_normal()) * spacing;
    molecules[i].pos[2] =
        (static_cast<double>(x) + 0.5 + 0.2 * rng.next_normal()) * spacing;
    for (int d = 0; d < 3; ++d) {
      molecules[i].vel[d] = rng.next_in(-1.0, 1.0);
    }
  }
  return molecules;
}

std::vector<pattern::Edge> generate_edges(const Params& params) {
  // Proximity edges from a cell-binned search over the actual positions;
  // the interaction radius is chosen so the expected pair count
  // approximates params.num_edges.
  const auto molecules = generate_molecules(params);

  // Domain extents from the data (the box may be z-elongated).
  double lo[3] = {1e300, 1e300, 1e300};
  double hi[3] = {-1e300, -1e300, -1e300};
  for (const auto& m : molecules) {
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], m.pos[d]);
      hi[d] = std::max(hi[d], m.pos[d]);
    }
  }
  const double volume = std::max(1e-9, (hi[0] - lo[0]) * (hi[1] - lo[1]) *
                                           (hi[2] - lo[2]));
  const double density = static_cast<double>(params.num_nodes) / volume;
  const double target_degree =
      2.0 * static_cast<double>(params.num_edges) /
      static_cast<double>(params.num_nodes);
  const double radius = std::cbrt(3.0 * target_degree /
                                  (4.0 * 3.14159265358979323846 * density));

  std::size_t cells[3];
  double origin[3];
  for (int d = 0; d < 3; ++d) {
    origin[d] = lo[d];
    cells[d] = std::max<std::size_t>(
        1, static_cast<std::size_t>((hi[d] - lo[d]) / radius));
  }
  auto cell_of = [&](const double* pos, int d) {
    const double edge = (hi[d] - lo[d]) / static_cast<double>(cells[d]);
    auto c = static_cast<long long>((pos[d] - origin[d]) /
                                    std::max(edge, 1e-12));
    c = std::max<long long>(
        0, std::min<long long>(c, static_cast<long long>(cells[d]) - 1));
    return static_cast<std::size_t>(c);
  };
  auto cell_index = [&](std::size_t cx, std::size_t cy, std::size_t cz) {
    return (cx * cells[1] + cy) * cells[2] + cz;
  };
  std::vector<std::vector<std::uint32_t>> bins(cells[0] * cells[1] *
                                               cells[2]);
  for (std::size_t i = 0; i < molecules.size(); ++i) {
    bins[cell_index(cell_of(molecules[i].pos, 0),
                    cell_of(molecules[i].pos, 1),
                    cell_of(molecules[i].pos, 2))]
        .push_back(static_cast<std::uint32_t>(i));
  }
  const double radius2 = radius * radius;
  std::vector<pattern::Edge> edges;
  edges.reserve(params.num_edges);
  for (std::size_t cx = 0; cx < cells[0]; ++cx) {
    for (std::size_t cy = 0; cy < cells[1]; ++cy) {
      for (std::size_t cz = 0; cz < cells[2]; ++cz) {
        for (long long dx = -1; dx <= 1; ++dx) {
          for (long long dy = -1; dy <= 1; ++dy) {
            for (long long dz = -1; dz <= 1; ++dz) {
              const long long nx = static_cast<long long>(cx) + dx;
              const long long ny = static_cast<long long>(cy) + dy;
              const long long nz = static_cast<long long>(cz) + dz;
              if (nx < 0 || ny < 0 || nz < 0 ||
                  nx >= static_cast<long long>(cells[0]) ||
                  ny >= static_cast<long long>(cells[1]) ||
                  nz >= static_cast<long long>(cells[2])) {
                continue;
              }
              const auto& cell = bins[cell_index(cx, cy, cz)];
              const auto& other =
                  bins[cell_index(static_cast<std::size_t>(nx),
                                  static_cast<std::size_t>(ny),
                                  static_cast<std::size_t>(nz))];
              for (std::uint32_t i : cell) {
                for (std::uint32_t j : other) {
                  if (j <= i) continue;
                  double r2 = 0.0;
                  for (int d = 0; d < 3; ++d) {
                    const double delta =
                        molecules[i].pos[d] - molecules[j].pos[d];
                    r2 += delta * delta;
                  }
                  if (r2 < radius2) edges.push_back({i, j});
                }
              }
            }
          }
        }
      }
    }
  }
  return edges;
}

// [psf-user-code-begin]
Result run_framework(minimpi::Communicator& comm,
                     const pattern::EnvOptions& options, const Params& params,
                     std::span<Molecule> molecules,
                     std::span<const pattern::Edge> edges) {
  pattern::RuntimeEnv env(comm, options);
  PSF_CHECK(env.init().is_ok());
  const double t0 = comm.timeline().now();

  // --- Compute Force (CF): irregular reduction, one start() per time step.
  auto* ir = env.get_IR();
  ForceParameter parameter{params.cutoff, params.dt};
  ir->set_edge_comp_func(force_cmpt);
  ir->set_node_reduc_func(force_reduce);
  ir->set_nodes(molecules.data(), sizeof(Molecule), molecules.size());
  ir->set_edges(edges.data(), edges.size(), nullptr, 0);
  ir->configure_value(sizeof(Force));
  ir->set_parameter(&parameter);
  double after_first = t0;
  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    PSF_CHECK(ir->start().is_ok());
    ir->update_nodedata(integrate);
    if (iteration == 0) after_first = comm.timeline().now();
  }
  const double cf_end = comm.timeline().now();
  // All partitions must have written back before the node-wide reductions
  // read the global array (the simulated result files).
  comm.barrier();

  // --- Kinetic Energy (KE): generalized reduction over the molecules.
  auto* gr = env.get_GR();
  gr->set_emit_func(ke_emit);
  gr->set_reduce_func(ke_reduce);
  gr->set_input(molecules.data(), sizeof(Molecule), molecules.size());
  gr->set_parameter(nullptr);
  gr->configure_object(4, sizeof(double));
  PSF_CHECK(gr->start().is_ok());
  Result result;
  PSF_CHECK(gr->get_global_reduction().lookup(0, &result.kinetic_energy));

  // --- Average Velocity (AV): the same runtime instance, reconfigured.
  gr->set_emit_func(av_emit);
  gr->set_reduce_func(av_reduce);
  gr->configure_object(4, sizeof(VelAccum));
  PSF_CHECK(gr->start().is_ok());
  VelAccum accum;
  PSF_CHECK(gr->get_global_reduction().lookup(0, &accum));
  for (int d = 0; d < 3; ++d) {
    result.avg_velocity[d] = accum.sum[d] / accum.count;
  }

  for (const auto& molecule : molecules) {
    result.position_checksum +=
        molecule.pos[0] + molecule.pos[1] + molecule.pos[2];
  }
  result.vtime = comm.timeline().now() - t0;
  result.steady_vtime =
      params.iterations > 1
          ? (cf_end - after_first) / (params.iterations - 1)
          : cf_end - t0;
  env.finalize();
  return result;
}
// [psf-user-code-end]

Result run_sequential(const Params& params, std::span<Molecule> molecules,
                      std::span<const pattern::Edge> edges) {
  std::vector<Force> forces(molecules.size());
  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    for (auto& force : forces) force = {};
    for (const auto& edge : edges) {
      double f[3];
      if (!pair_force(molecules[edge.u], molecules[edge.v], params.cutoff,
                      f)) {
        continue;
      }
      for (int d = 0; d < 3; ++d) {
        forces[edge.u].f[d] += f[d];
        forces[edge.v].f[d] -= f[d];
      }
    }
    for (std::size_t n = 0; n < molecules.size(); ++n) {
      for (int d = 0; d < 3; ++d) {
        molecules[n].vel[d] += forces[n].f[d] * params.dt;
        molecules[n].pos[d] += molecules[n].vel[d] * params.dt;
      }
    }
  }

  Result result;
  for (const auto& molecule : molecules) {
    double ke = 0.0;
    for (int d = 0; d < 3; ++d) {
      ke += molecule.vel[d] * molecule.vel[d];
      result.avg_velocity[d] += molecule.vel[d];
      result.position_checksum += molecule.pos[d];
    }
    result.kinetic_energy += 0.5 * ke;
  }
  for (int d = 0; d < 3; ++d) {
    result.avg_velocity[d] /= static_cast<double>(molecules.size());
  }
  const auto rates = timemodel::app_rates("moldyn");
  result.vtime = static_cast<double>(edges.size()) * params.iterations /
                 rates.cpu_core_units_per_s;
  return result;
}

}  // namespace psf::apps::moldyn
