#include "apps/minimd.h"

#include <algorithm>
#include <cmath>

#include "pattern/api.h"
#include "support/rng.h"

namespace psf::apps::minimd {

namespace {

// [psf-user-code-begin]
struct ForceParameter {
  double cutoff2 = 0.0;  ///< squared force cutoff
  double dt = 0.0;
};

struct Force {
  double f[3] = {};
};

/// Truncated Lennard-Jones force on atom a from atom b (sigma = eps = 1).
/// Returns true when within the cutoff.
inline bool lj_force(const Atom& a, const Atom& b, double cutoff2,
                     double* force) {
  double delta[3];
  double r2 = 0.0;
  for (int d = 0; d < 3; ++d) {
    delta[d] = a.pos[d] - b.pos[d];
    r2 += delta[d] * delta[d];
  }
  if (r2 >= cutoff2 || r2 <= 1.0e-12) return false;
  const double inv_r2 = 1.0 / r2;
  const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
  const double magnitude = 24.0 * inv_r6 * (2.0 * inv_r6 - 1.0) * inv_r2;
  for (int d = 0; d < 3; ++d) force[d] = magnitude * delta[d];
  return true;
}

DEVICE void lj_cmpt(pattern::ReductionObject* obj,
                    const pattern::EdgeView& edge, const void* /*edge_data*/,
                    const void* node_data, const void* parameter) {
  const auto* param = static_cast<const ForceParameter*>(parameter);
  const auto* atoms = static_cast<const Atom*>(node_data);
  double f[3];
  if (!lj_force(atoms[edge.node[0]], atoms[edge.node[1]], param->cutoff2,
                f)) {
    return;
  }
  Force force;
  if (edge.update[0]) {
    for (int d = 0; d < 3; ++d) force.f[d] = f[d];
    obj->insert(edge.node[0], &force);
  }
  if (edge.update[1]) {
    for (int d = 0; d < 3; ++d) force.f[d] = -f[d];
    obj->insert(edge.node[1], &force);
  }
}

DEVICE void force_reduce(void* dst, const void* src) {
  auto* a = static_cast<Force*>(dst);
  const auto* b = static_cast<const Force*>(src);
  for (int d = 0; d < 3; ++d) a->f[d] += b->f[d];
}

DEVICE void integrate(void* node_data, const void* value,
                      const void* parameter) {
  const auto* param = static_cast<const ForceParameter*>(parameter);
  auto* atom = static_cast<Atom*>(node_data);
  if (value != nullptr) {
    const auto* force = static_cast<const Force*>(value);
    for (int d = 0; d < 3; ++d) atom->vel[d] += force->f[d] * param->dt;
  }
  for (int d = 0; d < 3; ++d) atom->pos[d] += atom->vel[d] * param->dt;
}

DEVICE void ke_emit(pattern::ReductionObject* obj, const void* input,
                    std::size_t /*index*/, const void* /*parameter*/) {
  const auto* atom = static_cast<const Atom*>(input);
  double ke = 0.0;
  for (int d = 0; d < 3; ++d) ke += atom->vel[d] * atom->vel[d];
  ke *= 0.5;
  obj->insert(0, &ke);
}

DEVICE void ke_reduce(void* dst, const void* src) {
  *static_cast<double*>(dst) += *static_cast<const double*>(src);
}

}  // namespace
// [psf-user-code-end]

double box_edge(const Params& params) {
  const double per_side = std::ceil(std::cbrt(
      static_cast<double>(params.num_atoms)));
  return per_side * params.spacing;
}

std::vector<Atom> generate_atoms(const Params& params) {
  support::Xoshiro256 rng(params.seed);
  const std::size_t side =
      params.side_xy > 0
          ? params.side_xy
          : static_cast<std::size_t>(
                std::ceil(std::cbrt(static_cast<double>(params.num_atoms))));
  // Ordered z-major so 1-D index partitions are spatial slabs; pos[0] holds
  // the z (partitioned) coordinate.
  std::vector<Atom> atoms(params.num_atoms);
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const std::size_t x = i % side;
    const std::size_t y = (i / side) % side;
    const std::size_t z = i / (side * side);
    atoms[i].pos[0] = (static_cast<double>(z) + 0.5) * params.spacing;
    atoms[i].pos[1] = (static_cast<double>(y) + 0.5) * params.spacing;
    atoms[i].pos[2] = (static_cast<double>(x) + 0.5) * params.spacing;
    for (int d = 0; d < 3; ++d) atoms[i].vel[d] = 0.1 * rng.next_normal();
  }
  return atoms;
}

std::vector<pattern::Edge> build_neighbor_list(const Params& params,
                                               std::span<const Atom> atoms) {
  const double reach = params.cutoff + params.skin;
  // Per-dimension cell grid over the actual atom extents (the box may be
  // elongated, and atoms drift).
  double lo[3] = {1e300, 1e300, 1e300};
  double hi[3] = {-1e300, -1e300, -1e300};
  for (const auto& atom : atoms) {
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], atom.pos[d]);
      hi[d] = std::max(hi[d], atom.pos[d]);
    }
  }
  std::size_t cells[3];
  for (int d = 0; d < 3; ++d) {
    cells[d] = std::max<std::size_t>(
        1, static_cast<std::size_t>((hi[d] - lo[d]) / reach));
  }
  auto cell_of = [&](const Atom& atom, int d) {
    const double edge = (hi[d] - lo[d]) / static_cast<double>(cells[d]);
    auto c = static_cast<long long>((atom.pos[d] - lo[d]) /
                                    std::max(edge, 1e-12));
    c = std::max<long long>(
        0, std::min<long long>(c, static_cast<long long>(cells[d]) - 1));
    return static_cast<std::size_t>(c);
  };
  auto cell_index = [&](std::size_t cx, std::size_t cy, std::size_t cz) {
    return (cx * cells[1] + cy) * cells[2] + cz;
  };

  std::vector<std::vector<std::uint32_t>> bins(cells[0] * cells[1] *
                                               cells[2]);
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    bins[cell_index(cell_of(atoms[i], 0), cell_of(atoms[i], 1),
                    cell_of(atoms[i], 2))]
        .push_back(static_cast<std::uint32_t>(i));
  }

  const double reach2 = reach * reach;
  std::vector<pattern::Edge> edges;
  for (std::size_t cx = 0; cx < cells[0]; ++cx) {
    for (std::size_t cy = 0; cy < cells[1]; ++cy) {
      for (std::size_t cz = 0; cz < cells[2]; ++cz) {
        const auto& cell = bins[cell_index(cx, cy, cz)];
        for (long long dx = -1; dx <= 1; ++dx) {
          for (long long dy = -1; dy <= 1; ++dy) {
            for (long long dz = -1; dz <= 1; ++dz) {
              const long long nx = static_cast<long long>(cx) + dx;
              const long long ny = static_cast<long long>(cy) + dy;
              const long long nz = static_cast<long long>(cz) + dz;
              if (nx < 0 || ny < 0 || nz < 0 ||
                  nx >= static_cast<long long>(cells[0]) ||
                  ny >= static_cast<long long>(cells[1]) ||
                  nz >= static_cast<long long>(cells[2])) {
                continue;
              }
              const auto& other =
                  bins[cell_index(static_cast<std::size_t>(nx),
                                  static_cast<std::size_t>(ny),
                                  static_cast<std::size_t>(nz))];
              for (std::uint32_t i : cell) {
                for (std::uint32_t j : other) {
                  if (j <= i) continue;  // each pair once, u < v
                  double r2 = 0.0;
                  for (int d = 0; d < 3; ++d) {
                    const double delta = atoms[i].pos[d] - atoms[j].pos[d];
                    r2 += delta * delta;
                  }
                  if (r2 < reach2) edges.push_back({i, j});
                }
              }
            }
          }
        }
      }
    }
  }
  return edges;
}

// [psf-user-code-begin]
Result run_framework(minimpi::Communicator& comm,
                     const pattern::EnvOptions& options, const Params& params,
                     std::span<Atom> atoms) {
  pattern::RuntimeEnv env(comm, options);
  PSF_CHECK(env.init().is_ok());
  const double t0 = comm.timeline().now();

  ForceParameter parameter{params.cutoff * params.cutoff, params.dt};
  auto* ir = env.get_IR();
  ir->set_edge_comp_func(lj_cmpt);
  ir->set_node_reduc_func(force_reduce);
  ir->set_nodes(atoms.data(), sizeof(Atom), atoms.size());
  ir->configure_value(sizeof(Force));
  ir->set_parameter(&parameter);

  std::vector<pattern::Edge> edges = build_neighbor_list(params, atoms);
  ir->set_edges(edges.data(), edges.size(), nullptr, 0);

  Result result;
  double after_first = t0;
  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    if (iteration > 0 && params.rebuild_every > 0 &&
        iteration % params.rebuild_every == 0) {
      // All partitions wrote back their atoms; rebuild the global neighbor
      // list and re-run the id exchange (protocol steps 1-4).
      comm.barrier();
      edges = build_neighbor_list(params, atoms);
      ir->reset_edges(edges.data(), edges.size(), nullptr, 0);
    }
    PSF_CHECK(ir->start().is_ok());
    ir->update_nodedata(integrate);
    if (iteration == 0) after_first = comm.timeline().now();
  }
  result.last_edge_count = edges.size();
  result.steady_vtime =
      params.iterations > 1
          ? (comm.timeline().now() - after_first) / (params.iterations - 1)
          : comm.timeline().now() - t0;
  comm.barrier();

  // Energy kernels: generalized reduction over the atoms.
  auto* gr = env.get_GR();
  gr->set_emit_func(ke_emit);
  gr->set_reduce_func(ke_reduce);
  gr->set_input(atoms.data(), sizeof(Atom), atoms.size());
  gr->set_parameter(nullptr);
  gr->configure_object(4, sizeof(double));
  PSF_CHECK(gr->start().is_ok());
  PSF_CHECK(gr->get_global_reduction().lookup(0, &result.kinetic_energy));
  result.temperature =
      2.0 * result.kinetic_energy / (3.0 * static_cast<double>(atoms.size()));

  for (const auto& atom : atoms) {
    result.position_checksum += atom.pos[0] + atom.pos[1] + atom.pos[2];
  }
  result.vtime = comm.timeline().now() - t0;
  env.finalize();
  return result;
}
// [psf-user-code-end]

Result run_sequential(const Params& params, std::span<Atom> atoms) {
  const double cutoff2 = params.cutoff * params.cutoff;
  std::vector<pattern::Edge> edges = build_neighbor_list(params, atoms);
  std::vector<Force> forces(atoms.size());
  std::size_t total_edges = 0;

  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    if (iteration > 0 && params.rebuild_every > 0 &&
        iteration % params.rebuild_every == 0) {
      edges = build_neighbor_list(params, atoms);
    }
    for (auto& force : forces) force = {};
    for (const auto& edge : edges) {
      double f[3];
      if (!lj_force(atoms[edge.u], atoms[edge.v], cutoff2, f)) continue;
      for (int d = 0; d < 3; ++d) {
        forces[edge.u].f[d] += f[d];
        forces[edge.v].f[d] -= f[d];
      }
    }
    for (std::size_t n = 0; n < atoms.size(); ++n) {
      for (int d = 0; d < 3; ++d) {
        atoms[n].vel[d] += forces[n].f[d] * params.dt;
        atoms[n].pos[d] += atoms[n].vel[d] * params.dt;
      }
    }
    total_edges += edges.size();
  }

  Result result;
  result.last_edge_count = edges.size();
  for (const auto& atom : atoms) {
    double ke = 0.0;
    for (int d = 0; d < 3; ++d) {
      ke += atom.vel[d] * atom.vel[d];
      result.position_checksum += atom.pos[d];
    }
    result.kinetic_energy += 0.5 * ke;
  }
  result.temperature =
      2.0 * result.kinetic_energy / (3.0 * static_cast<double>(atoms.size()));
  const auto rates = timemodel::app_rates("minimd");
  result.vtime =
      static_cast<double>(total_edges) / rates.cpu_core_units_per_s;
  return result;
}

}  // namespace psf::apps::minimd
