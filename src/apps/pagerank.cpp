#include "apps/pagerank.h"

#include <algorithm>
#include <cmath>

#include "pattern/api.h"
#include "support/rng.h"

namespace psf::apps::pagerank {

namespace {

struct RankParameter {
  double damping = 0.85;
  double num_pages = 1.0;
};

// [psf-user-code-begin]
/// Edge compute: a directed link (u, v) pushes rank[u]/out_degree[u] to v.
/// Only the destination endpoint accumulates — the update flags express
/// directed semantics naturally.
DEVICE void contribute(pattern::ReductionObject* obj,
                       const pattern::EdgeView& edge,
                       const void* /*edge_data*/, const void* node_data,
                       const void* /*parameter*/) {
  if (!edge.update[1]) return;  // destination owned elsewhere
  const auto* pages = static_cast<const Page*>(node_data);
  const Page& source = pages[edge.node[0]];
  if (source.out_degree <= 0.0) return;
  const double share = source.rank / source.out_degree;
  obj->insert(edge.node[1], &share);
}

DEVICE void rank_reduce(void* dst, const void* src) {
  *static_cast<double*>(dst) += *static_cast<const double*>(src);
}

/// Damping update: rank' = (1-d)/N + d * accumulated contributions.
DEVICE void apply_damping(void* node_data, const void* value,
                          const void* parameter) {
  const auto* param = static_cast<const RankParameter*>(parameter);
  auto* page = static_cast<Page*>(node_data);
  const double incoming =
      value != nullptr ? *static_cast<const double*>(value) : 0.0;
  page->rank =
      (1.0 - param->damping) / param->num_pages + param->damping * incoming;
}
// [psf-user-code-end]

}  // namespace

std::vector<pattern::Edge> generate_links(const Params& params) {
  support::Xoshiro256 rng(params.seed);
  std::vector<pattern::Edge> links;
  links.reserve(params.num_links);
  for (std::size_t i = 0; i < params.num_links; ++i) {
    const auto u =
        static_cast<std::uint32_t>(rng.next_below(params.num_pages));
    // Skew destinations: popular pages attract more links.
    std::uint32_t v;
    do {
      const double r = rng.next_double();
      v = static_cast<std::uint32_t>(
          static_cast<double>(params.num_pages) * r * r);
      if (v >= params.num_pages) v = 0;
    } while (v == u);
    links.push_back({u, v});
  }
  return links;
}

std::vector<Page> initial_pages(const Params& params,
                                std::span<const pattern::Edge> links) {
  std::vector<Page> pages(params.num_pages);
  for (auto& page : pages) {
    page.rank = 1.0 / static_cast<double>(params.num_pages);
  }
  for (const auto& link : links) pages[link.u].out_degree += 1.0;
  return pages;
}

// [psf-user-code-begin]
Result run_framework(minimpi::Communicator& comm,
                     const pattern::EnvOptions& options, const Params& params,
                     std::span<Page> pages,
                     std::span<const pattern::Edge> links) {
  pattern::RuntimeEnv env(comm, options);
  PSF_CHECK(env.init().is_ok());
  const double t0 = comm.timeline().now();

  RankParameter parameter{params.damping,
                          static_cast<double>(params.num_pages)};
  auto* ir = env.get_IR();
  ir->set_edge_comp_func(contribute);
  ir->set_node_reduc_func(rank_reduce);
  ir->set_nodes(pages.data(), sizeof(Page), pages.size());
  ir->set_edges(links.data(), links.size(), nullptr, 0);
  ir->configure_value(sizeof(double));
  ir->set_parameter(&parameter);

  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    PSF_CHECK(ir->start().is_ok());
    ir->update_nodedata(apply_damping);
  }
  comm.barrier();

  Result result;
  result.vtime = comm.timeline().now() - t0;
  result.ranks.resize(pages.size());
  for (std::size_t p = 0; p < pages.size(); ++p) {
    result.ranks[p] = pages[p].rank;
    result.rank_sum += pages[p].rank;
  }
  env.finalize();
  return result;
}
// [psf-user-code-end]

Result run_sequential(const Params& params, std::span<Page> pages,
                      std::span<const pattern::Edge> links) {
  std::vector<double> incoming(pages.size(), 0.0);
  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    std::fill(incoming.begin(), incoming.end(), 0.0);
    for (const auto& link : links) {
      if (pages[link.u].out_degree > 0.0) {
        incoming[link.v] += pages[link.u].rank / pages[link.u].out_degree;
      }
    }
    for (std::size_t p = 0; p < pages.size(); ++p) {
      pages[p].rank =
          (1.0 - params.damping) / static_cast<double>(pages.size()) +
          params.damping * incoming[p];
    }
  }
  Result result;
  result.ranks.resize(pages.size());
  for (std::size_t p = 0; p < pages.size(); ++p) {
    result.ranks[p] = pages[p].rank;
    result.rank_sum += pages[p].rank;
  }
  const auto rates = timemodel::app_rates("moldyn");
  result.vtime = static_cast<double>(links.size()) * params.iterations /
                 rates.cpu_core_units_per_s;
  return result;
}

}  // namespace psf::apps::pagerank
