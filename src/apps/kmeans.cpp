#include "apps/kmeans.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "pattern/api.h"
#include "support/rng.h"

namespace psf::apps::kmeans {

namespace {

// [psf-user-code-begin]
/// Emit: assign one point to its nearest center and accumulate it there
/// (the paper's gr_emit_fp for Kmeans).
DEVICE void kmeans_emit(pattern::ReductionObject* obj, const void* input,
                        std::size_t /*index*/, const void* parameter) {
  const auto* param = static_cast<const EmitParameter*>(parameter);
  const auto* point = static_cast<const float*>(input);
  int best = 0;
  double best_dist = 0.0;
  for (int c = 0; c < param->num_clusters; ++c) {
    double dist = 0.0;
    for (int d = 0; d < kDims; ++d) {
      const double diff =
          static_cast<double>(point[d]) - param->centers[c * kDims + d];
      dist += diff * diff;
    }
    if (c == 0 || dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  ClusterAccum accum;
  for (int d = 0; d < kDims; ++d) accum.sum[d] = point[d];
  accum.count = 1;
  obj->insert(static_cast<std::uint64_t>(best), &accum);
}

/// Reduce: element-wise accumulation of cluster sums (gr_reduce_fp).
DEVICE void kmeans_reduce(void* dst, const void* src) {
  auto* a = static_cast<ClusterAccum*>(dst);
  const auto* b = static_cast<const ClusterAccum*>(src);
  for (int d = 0; d < kDims; ++d) a->sum[d] += b->sum[d];
  a->count += b->count;
}
// [psf-user-code-end]

// The fused-variant helpers below are composition-layer demo code (beyond
// the paper), so they sit outside the Figure 6 LoC markers: the counted
// user code is the paper-parity port alone.

/// Distance of one point to its nearest center (shared by the fused and
/// inertia-only emits, so both stage the exact same doubles).
DEVICE double kmeans_best_dist(const float* point,
                               const EmitParameter* param, int* best_out) {
  int best = 0;
  double best_dist = 0.0;
  for (int c = 0; c < param->num_clusters; ++c) {
    double dist = 0.0;
    for (int d = 0; d < kDims; ++d) {
      const double diff =
          static_cast<double>(point[d]) - param->centers[c * kDims + d];
      dist += diff * diff;
    }
    if (c == 0 || dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  *best_out = best;
  return best_dist;
}

/// Fused emit: one pass accumulates the cluster assignment AND the point's
/// inertia contribution (staged under the reserved key `num_clusters` with
/// the distance in sum[0]) — the second emit pass the unfused sequence pays
/// for disappears.
DEVICE void kmeans_emit_fused(pattern::ReductionObject* obj,
                              const void* input, std::size_t /*index*/,
                              const void* parameter) {
  const auto* param = static_cast<const EmitParameter*>(parameter);
  const auto* point = static_cast<const float*>(input);
  int best = 0;
  const double best_dist = kmeans_best_dist(point, param, &best);
  ClusterAccum accum;
  for (int d = 0; d < kDims; ++d) accum.sum[d] = point[d];
  accum.count = 1;
  obj->insert(static_cast<std::uint64_t>(best), &accum);
  ClusterAccum inertia;
  inertia.sum[0] = best_dist;
  inertia.count = 1;
  obj->insert(static_cast<std::uint64_t>(param->num_clusters), &inertia);
}

/// Inertia-only emit for the unfused reference: a full second pass over the
/// points against the SAME (pre-update) centers the assignment pass used.
DEVICE void kmeans_emit_inertia(pattern::ReductionObject* obj,
                                const void* input, std::size_t /*index*/,
                                const void* parameter) {
  const auto* param = static_cast<const EmitParameter*>(parameter);
  const auto* point = static_cast<const float*>(input);
  int best = 0;
  const double best_dist = kmeans_best_dist(point, param, &best);
  ClusterAccum inertia;
  inertia.sum[0] = best_dist;
  inertia.count = 1;
  obj->insert(static_cast<std::uint64_t>(param->num_clusters), &inertia);
}

// [psf-user-code-begin]
/// Recompute centers from a combined reduction object; clusters that lost
/// all points keep their previous center.
void centers_from_reduction(const pattern::ReductionObject& object,
                            std::vector<double>& centers, int k) {
  for (int c = 0; c < k; ++c) {
    ClusterAccum accum;
    if (object.lookup(static_cast<std::uint64_t>(c), &accum) &&
        accum.count > 0) {
      for (int d = 0; d < kDims; ++d) {
        centers[static_cast<std::size_t>(c) * kDims + d] =
            accum.sum[d] / accum.count;
      }
    }
  }
}

}  // namespace
// [psf-user-code-end]

std::vector<float> generate_points(const Params& params) {
  support::Xoshiro256 rng(params.seed);
  // Blob centers spread over a [0, 100)^3 box with unit-ish spread.
  std::vector<double> blob_centers(
      static_cast<std::size_t>(params.num_clusters) * kDims);
  for (auto& coordinate : blob_centers) coordinate = rng.next_in(0.0, 100.0);

  std::vector<float> points(params.num_points * kDims);
  for (std::size_t p = 0; p < params.num_points; ++p) {
    const std::size_t blob =
        rng.next_below(static_cast<std::uint64_t>(params.num_clusters));
    for (int d = 0; d < kDims; ++d) {
      points[p * kDims + static_cast<std::size_t>(d)] = static_cast<float>(
          blob_centers[blob * kDims + static_cast<std::size_t>(d)] +
          2.0 * rng.next_normal());
    }
  }
  return points;
}

std::vector<double> initial_centers(const Params& params,
                                    std::span<const float> points) {
  std::vector<double> centers(
      static_cast<std::size_t>(params.num_clusters) * kDims);
  for (int c = 0; c < params.num_clusters; ++c) {
    for (int d = 0; d < kDims; ++d) {
      centers[static_cast<std::size_t>(c) * kDims + static_cast<std::size_t>(d)] =
          static_cast<double>(
              points[static_cast<std::size_t>(c) * kDims +
                     static_cast<std::size_t>(d)]);
    }
  }
  return centers;
}

// [psf-user-code-begin]
Result run_framework(minimpi::Communicator& comm,
                     const pattern::EnvOptions& options, const Params& params,
                     std::span<const float> points) {
  pattern::RuntimeEnv env(comm, options);
  PSF_CHECK(env.init().is_ok());
  auto* gr = env.get_GR();

  std::vector<double> centers = initial_centers(params, points);
  EmitParameter parameter{centers.data(), params.num_clusters};

  gr->set_emit_func(kmeans_emit);
  gr->set_reduce_func(kmeans_reduce);
  gr->set_input(points.data(), sizeof(float) * kDims, params.num_points);
  gr->set_parameter(&parameter);
  gr->configure_object(static_cast<std::size_t>(params.num_clusters) * 2,
                       sizeof(ClusterAccum));

  const double t0 = comm.timeline().now();
  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    PSF_CHECK(gr->start().is_ok());
    const auto& global = gr->get_global_reduction();
    centers_from_reduction(global, centers, params.num_clusters);
  }
  Result result;
  result.centers = std::move(centers);
  result.vtime = comm.timeline().now() - t0;
  result.steady_vtime = result.vtime / params.iterations;
  env.finalize();
  return result;
}
// [psf-user-code-end]

// Outside the LoC markers: the monitored fused/unfused comparison harness
// is a benchmark fixture, not part of the paper's user-code comparison.
MonitoredResult run_framework_monitored(minimpi::Communicator& comm,
                                        const pattern::EnvOptions& options,
                                        const Params& params,
                                        std::span<const float> points,
                                        bool fused) {
  pattern::RuntimeEnv env(comm, options);
  PSF_CHECK(env.init().is_ok());
  auto* gr = env.get_GR();

  std::vector<double> centers = initial_centers(params, points);
  EmitParameter parameter{centers.data(), params.num_clusters};
  const std::size_t k = static_cast<std::size_t>(params.num_clusters);

  gr->set_reduce_func(kmeans_reduce);
  gr->set_input(points.data(), sizeof(float) * kDims, params.num_points);
  gr->set_parameter(&parameter);
  // One extra slot for the reserved inertia key; the capacity is the same
  // in both modes so the object layout (and GPU shared-memory localization
  // decision) — and therefore every staged byte — matches exactly.
  gr->configure_object(k * 2 + 2, sizeof(ClusterAccum));

  MonitoredResult result;
  result.inertia.reserve(static_cast<std::size_t>(params.iterations));
  const std::uint64_t inertia_key = static_cast<std::uint64_t>(k);

  const double t0 = comm.timeline().now();
  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    if (fused) {
      // One pass, one combine: assignments and inertia together.
      gr->set_emit_func(kmeans_emit_fused);
      PSF_CHECK(gr->start().is_ok());
      const auto& global = gr->get_global_reduction();
      ClusterAccum inertia;
      if (global.lookup(inertia_key, &inertia)) {
        result.inertia.push_back(inertia.sum[0]);
      } else {
        result.inertia.push_back(0.0);
      }
      centers_from_reduction(global, centers, params.num_clusters);
    } else {
      // Reference sequence: assignment pass + combine, then a full second
      // pass + combine for the inertia — against the SAME pre-update
      // centers, so the values match the fused path bit for bit.
      gr->set_emit_func(kmeans_emit);
      PSF_CHECK(gr->start().is_ok());
      std::vector<double> new_centers = centers;
      centers_from_reduction(gr->get_global_reduction(), new_centers,
                             params.num_clusters);
      gr->set_emit_func(kmeans_emit_inertia);
      PSF_CHECK(gr->start().is_ok());
      const auto& global = gr->get_global_reduction();
      ClusterAccum inertia;
      if (global.lookup(inertia_key, &inertia)) {
        result.inertia.push_back(inertia.sum[0]);
      } else {
        result.inertia.push_back(0.0);
      }
      // In-place so `parameter` keeps pointing at valid storage.
      std::copy(new_centers.begin(), new_centers.end(), centers.begin());
    }
  }
  result.centers = std::move(centers);
  result.vtime = comm.timeline().now() - t0;
  result.steady_vtime = result.vtime / params.iterations;
  env.finalize();
  return result;
}

Result run_sequential(const Params& params, std::span<const float> points) {
  std::vector<double> centers = initial_centers(params, points);
  const std::size_t k = static_cast<std::size_t>(params.num_clusters);
  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    std::vector<ClusterAccum> accums(k);
    for (std::size_t p = 0; p < params.num_points; ++p) {
      const float* point = points.data() + p * kDims;
      std::size_t best = 0;
      double best_dist = 0.0;
      for (std::size_t c = 0; c < k; ++c) {
        double dist = 0.0;
        for (int d = 0; d < kDims; ++d) {
          const double diff = static_cast<double>(point[d]) -
                              centers[c * kDims + static_cast<std::size_t>(d)];
          dist += diff * diff;
        }
        if (c == 0 || dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      for (int d = 0; d < kDims; ++d) {
        accums[best].sum[d] += static_cast<double>(point[d]);
      }
      accums[best].count += 1;
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (accums[c].count > 0) {
        for (int d = 0; d < kDims; ++d) {
          centers[c * kDims + static_cast<std::size_t>(d)] =
              accums[c].sum[d] / accums[c].count;
        }
      }
    }
  }
  Result result;
  result.centers = std::move(centers);
  // Virtual cost of the single-core run, from the same calibration.
  const auto rates = timemodel::app_rates("kmeans");
  result.vtime = static_cast<double>(params.num_points) * params.iterations /
                 rates.cpu_core_units_per_s;
  return result;
}

}  // namespace psf::apps::kmeans
