// PSF — Pattern Specification Framework
// MiniMD (paper Section IV-A): the Mantevo molecular-dynamics mini-app.
// Lennard-Jones force over a cell-built neighbor list (irregular reduction,
// with the list rebuilt every few steps via reset_edges), velocity-Verlet
// style integration, and generalized-reduction energy kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "minimpi/communicator.h"
#include "pattern/ireduction.h"
#include "pattern/runtime_env.h"

namespace psf::apps::minimd {

struct Params {
  std::size_t num_atoms = 4096;
  /// Lattice cross-section (atoms per side in x and y); 0 = cubic box.
  /// Benches elongate the box (small side_xy) so a scaled-down system keeps
  /// the paper's surface-to-volume ratio under 1-D atom decomposition.
  std::size_t side_xy = 0;
  double spacing = 1.2;    ///< initial simple-cubic lattice spacing (sigma)
  double cutoff = 2.5;     ///< LJ force cutoff (sigma)
  double skin = 0.3;       ///< neighbor-list skin distance
  int iterations = 10;
  int rebuild_every = 5;   ///< neighbor-list rebuild period
  double dt = 5.0e-4;
  std::uint64_t seed = 11;
};

struct Atom {
  double pos[3] = {};
  double vel[3] = {};
};

/// Atoms on a simple cubic lattice with small random velocities.
std::vector<Atom> generate_atoms(const Params& params);

/// Edge length of the cubic domain for `params`.
double box_edge(const Params& params);

/// Cell-binned neighbor list: pairs (u < v) within cutoff + skin.
std::vector<pattern::Edge> build_neighbor_list(const Params& params,
                                               std::span<const Atom> atoms);

struct Result {
  double kinetic_energy = 0.0;
  double temperature = 0.0;
  double position_checksum = 0.0;
  std::size_t last_edge_count = 0;
  double vtime = 0.0;
  /// Post-adaptation per-iteration virtual time (steady state, after the
  /// profiling iteration repartitioned the devices). Benches extrapolate
  /// the paper's long runs from this.
  double steady_vtime = 0.0;
};

/// Framework implementation. Collective; `atoms` is the mutable global
/// atom array (the simulated input/checkpoint files).
Result run_framework(minimpi::Communicator& comm,
                     const pattern::EnvOptions& options, const Params& params,
                     std::span<Atom> atoms);

/// Single-core reference with identical physics and rebuild schedule.
Result run_sequential(const Params& params, std::span<Atom> atoms);

}  // namespace psf::apps::minimd
