// PSF — Pattern Specification Framework
// Heat3D (paper Section IV-A): 7-point double-precision heat diffusion in a
// 3-D box with fixed (Dirichlet) boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "minimpi/communicator.h"
#include "pattern/runtime_env.h"

namespace psf::apps::heat3d {

struct Params {
  std::size_t nx = 64;
  std::size_t ny = 64;
  std::size_t nz = 64;
  int iterations = 20;
  double alpha = 0.1;  ///< diffusion coefficient (stable for alpha <= 1/6)
  std::uint64_t seed = 3;
};

/// Initial temperature field: cold volume with hot spots and hot walls.
std::vector<double> generate_field(const Params& params);

struct Result {
  std::vector<double> field;  ///< final global grid
  double checksum = 0.0;
  double vtime = 0.0;
  /// Post-adaptation per-iteration virtual time (steady state, after the
  /// profiling iteration repartitioned the devices). Benches extrapolate
  /// the paper's long runs from this.
  double steady_vtime = 0.0;
};

/// Framework implementation (StencilRuntime). Collective.
Result run_framework(minimpi::Communicator& comm,
                     const pattern::EnvOptions& options, const Params& params,
                     std::span<const double> field);

/// Result of the monitored (stencil + per-iteration residual) pipeline.
struct MonitoredResult {
  std::vector<double> field;      ///< final global grid
  double checksum = 0.0;
  std::vector<double> residuals;  ///< per iteration: global sum of squared
                                  ///< cell deltas (new - old)^2
  double vtime = 0.0;
  double steady_vtime = 0.0;      ///< per-iteration virtual time, last step
};

/// Composition-layer implementation: a two-stage PatternGraph whose sweep
/// stage runs a StencilReduce (7-point update + residual reduction) and
/// hands the residual to a monitor stage through a pooled buffer. With
/// `fused` the residual emit rides the sweep's tile loop; without, the
/// reference second grid pass computes it. Field, checksum and residuals
/// are bit-identical between the two modes and across executor widths —
/// only the virtual time differs (fused saves the extra pass + barrier).
/// Collective.
MonitoredResult run_framework_monitored(minimpi::Communicator& comm,
                                        const pattern::EnvOptions& options,
                                        const Params& params,
                                        std::span<const double> field,
                                        bool fused);

/// Single-core reference.
Result run_sequential(const Params& params, std::span<const double> field);

}  // namespace psf::apps::heat3d
