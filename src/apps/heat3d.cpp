#include "apps/heat3d.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "pattern/api.h"
#include "pattern/compose.h"
#include "support/rng.h"
#include "support/simd.h"

namespace psf::apps::heat3d {

namespace {

// [psf-user-code-begin]
/// 7-point explicit diffusion update for one cell (paper's Heat3D kernel).
DEVICE void heat_fp(const void* input, void* output, const int* offset,
                    const int* size, const void* parameter) {
  const double alpha = *static_cast<const double*>(parameter);
  const int z = offset[0];
  const int y = offset[1];
  const int x = offset[2];
  const double center = GET_DOUBLE3(input, size, z, y, x);
  const double neighbors = GET_DOUBLE3(input, size, z - 1, y, x) +
                           GET_DOUBLE3(input, size, z + 1, y, x) +
                           GET_DOUBLE3(input, size, z, y - 1, x) +
                           GET_DOUBLE3(input, size, z, y + 1, x) +
                           GET_DOUBLE3(input, size, z, y, x - 1) +
                           GET_DOUBLE3(input, size, z, y, x + 1);
  GET_DOUBLE3(output, size, z, y, x) =
      center + alpha * (neighbors - 6.0 * center);
// [psf-user-code-end]
}

// [psf-user-code-begin]
/// Row variant of heat_fp: `count` cells along x from `offset`. Each lane
/// repeats the scalar sum term-for-term (z-1, z+1, y-1, y+1, x-1, x+1), so
/// the bytes match heat_fp exactly whether or not the loop vectorizes.
DEVICE void heat_row_fp(const void* input, void* output, const int* offset,
                        const int* size, int count, const void* parameter) {
  const double alpha = *static_cast<const double*>(parameter);
  const int z = offset[0];
  const int y = offset[1];
  const int x0 = offset[2];
  const auto* in = static_cast<const double*>(input);
  auto* out = static_cast<double*>(output);
  const auto sy = static_cast<std::size_t>(size[2]);
  const std::size_t sz = static_cast<std::size_t>(size[1]) * sy;
  const std::size_t base = static_cast<std::size_t>(z) * sz +
                           static_cast<std::size_t>(y) * sy +
                           static_cast<std::size_t>(x0);
  const double* c0 = in + base;
  const double* zm = c0 - sz;
  const double* zp = c0 + sz;
  const double* ym = c0 - sy;
  const double* yp = c0 + sy;
  double* dst = out + base;
  PSF_SIMD_LOOP
  for (int i = 0; i < count; ++i) {
    const double center = c0[i];
    const double neighbors =
        zm[i] + zp[i] + ym[i] + yp[i] + c0[i - 1] + c0[i + 1];
    dst[i] = center + alpha * (neighbors - 6.0 * center);
  }
}
// [psf-user-code-end]

double checksum_of(std::span<const double> field) {
  double sum = 0.0;
  for (double v : field) sum += v;
  return sum;
}

}  // namespace

std::vector<double> generate_field(const Params& params) {
  support::Xoshiro256 rng(params.seed);
  std::vector<double> field(params.nx * params.ny * params.nz, 0.0);
  auto at = [&](std::size_t z, std::size_t y, std::size_t x) -> double& {
    return field[(z * params.ny + y) * params.nz + x];
  };
  // Hot z=0 wall and a few hot spherical spots.
  for (std::size_t y = 0; y < params.ny; ++y) {
    for (std::size_t x = 0; x < params.nz; ++x) at(0, y, x) = 100.0;
  }
  for (int spot = 0; spot < 6; ++spot) {
    const std::size_t cz = rng.next_below(params.nx);
    const std::size_t cy = rng.next_below(params.ny);
    const std::size_t cx = rng.next_below(params.nz);
    const double temperature = rng.next_in(200.0, 400.0);
    const long long radius = 2 + static_cast<long long>(rng.next_below(3));
    for (long long z = -radius; z <= radius; ++z) {
      for (long long y = -radius; y <= radius; ++y) {
        for (long long x = -radius; x <= radius; ++x) {
          const long long zz = static_cast<long long>(cz) + z;
          const long long yy = static_cast<long long>(cy) + y;
          const long long xx = static_cast<long long>(cx) + x;
          if (zz < 0 || yy < 0 || xx < 0 ||
              zz >= static_cast<long long>(params.nx) ||
              yy >= static_cast<long long>(params.ny) ||
              xx >= static_cast<long long>(params.nz)) {
            continue;
          }
          if (z * z + y * y + x * x <= radius * radius) {
            at(static_cast<std::size_t>(zz), static_cast<std::size_t>(yy),
               static_cast<std::size_t>(xx)) = temperature;
          }
        }
      }
    }
  }
  return field;
}

// [psf-user-code-begin]
Result run_framework(minimpi::Communicator& comm,
                     const pattern::EnvOptions& options, const Params& params,
                     std::span<const double> field) {
  pattern::RuntimeEnv env(comm, options);
  PSF_CHECK(env.init().is_ok());
  auto* st = env.get_ST();

  const double alpha = params.alpha;
  st->set_stencil_func(heat_fp);
  st->set_row_func(heat_row_fp);
  st->set_grid(field.data(), sizeof(double),
               {params.nx, params.ny, params.nz});
  st->set_halo(1);
  st->set_parameter(&alpha);

  const double t0 = comm.timeline().now();
  PSF_CHECK(st->run(params.iterations).is_ok());
  Result result;
  result.vtime = comm.timeline().now() - t0;
  result.steady_vtime = st->stats().last_iteration_vtime;

  result.field.assign(field.size(), 0.0);
  st->write_back(result.field.data());
  comm.reduce<double>(result.field, 0, [](double& a, double b) { a += b; });
  comm.bcast(std::as_writable_bytes(std::span<double>(result.field)), 0);
  result.checksum = checksum_of(result.field);
  env.finalize();
  return result;
}
// [psf-user-code-end]

// Outside the LoC markers: the fused/unfused comparison harness is
// composition-layer demo code, not part of the paper's Figure 6 user-code
// comparison.
MonitoredResult run_framework_monitored(minimpi::Communicator& comm,
                                        const pattern::EnvOptions& options,
                                        const Params& params,
                                        std::span<const double> field,
                                        bool fused) {
  pattern::RuntimeEnv env(comm, options);
  PSF_CHECK(env.init().is_ok());

  // Fused stencil+reduce: the 7-point update plus a per-cell residual
  // emit ((new - old)^2 at key 0), combined across ranks every iteration.
  pattern::TypedStencilReduce<double, 3, double> sr(env);
  const double alpha = params.alpha;
  sr.set_stencil<double>([](const pattern::GridView<double, 3>& in,
                            const pattern::MutableGridView<double, 3>& out,
                            const int* c, const double* diffusion) {
    const int z = c[0];
    const int y = c[1];
    const int x = c[2];
    const double center = in(z, y, x);
    const double neighbors = in(z - 1, y, x) + in(z + 1, y, x) +
                             in(z, y - 1, x) + in(z, y + 1, x) +
                             in(z, y, x - 1) + in(z, y, x + 1);
    out(z, y, x) = center + *diffusion * (neighbors - 6.0 * center);
  });
  sr.set_emit([](pattern::TypedObject<double>& obj,
                 const pattern::GridView<double, 3>& before,
                 const pattern::GridView<double, 3>& after, const int* c,
                 const void* /*parameter*/) {
    const double delta =
        after(c[0], c[1], c[2]) - before(c[0], c[1], c[2]);
    obj.insert(0, delta * delta);
  });
  sr.set_combine([](double& dst, const double& src) { dst += src; });
  sr.set_grid(field, {params.nx, params.ny, params.nz});
  sr.set_halo(1);
  sr.set_parameter(&alpha);
  sr.configure(2);
  sr.set_fused(fused);

  MonitoredResult result;
  result.residuals.reserve(static_cast<std::size_t>(params.iterations));

  // Two-stage pipeline: "sweep" publishes the iteration residual, "monitor"
  // consumes it zero-copy from the pooled handoff buffer. The handoff edge
  // makes psf-analyze attribute the cross-stage critical path.
  pattern::PatternGraph graph(env);
  PSF_CHECK(graph
                .add_stage("sweep",
                           [&](pattern::StageContext& ctx) {
                             PSF_RETURN_IF_ERROR(sr.step());
                             double residual = 0.0;
                             (void)sr.lookup(0, &residual);
                             return ctx.publish(std::as_bytes(
                                 std::span<const double>(&residual, 1)));
                           })
                .is_ok());
  PSF_CHECK(graph
                .add_stage("monitor",
                           [&](pattern::StageContext& ctx) {
                             double residual = 0.0;
                             std::memcpy(&residual, ctx.input(0).data(),
                                         sizeof(double));
                             result.residuals.push_back(residual);
                             return support::Status::ok();
                           })
                .is_ok());
  PSF_CHECK(graph.connect("sweep", "monitor", sizeof(double)).is_ok());

  const double t0 = comm.timeline().now();
  PSF_CHECK(graph.run(params.iterations).is_ok());
  result.vtime = comm.timeline().now() - t0;
  result.steady_vtime = sr.stats().last_step_vtime;

  result.field.assign(field.size(), 0.0);
  sr.write_back(result.field);
  comm.reduce<double>(result.field, 0, [](double& a, double b) { a += b; });
  comm.bcast(std::as_writable_bytes(std::span<double>(result.field)), 0);
  result.checksum = checksum_of(result.field);
  env.finalize();
  return result;
}

Result run_sequential(const Params& params, std::span<const double> field) {
  std::vector<double> in(field.begin(), field.end());
  std::vector<double> out = in;
  const std::size_t ny = params.ny;
  const std::size_t nz = params.nz;
  auto index = [&](std::size_t z, std::size_t y, std::size_t x) {
    return (z * ny + y) * nz + x;
  };
  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    for (std::size_t z = 1; z + 1 < params.nx; ++z) {
      for (std::size_t y = 1; y + 1 < ny; ++y) {
        for (std::size_t x = 1; x + 1 < nz; ++x) {
          const double center = in[index(z, y, x)];
          const double neighbors =
              in[index(z - 1, y, x)] + in[index(z + 1, y, x)] +
              in[index(z, y - 1, x)] + in[index(z, y + 1, x)] +
              in[index(z, y, x - 1)] + in[index(z, y, x + 1)];
          out[index(z, y, x)] =
              center + params.alpha * (neighbors - 6.0 * center);
        }
      }
    }
    std::swap(in, out);
  }
  Result result;
  result.field = std::move(in);
  result.checksum = checksum_of(result.field);
  const auto rates = timemodel::app_rates("heat3d");
  result.vtime = static_cast<double>(params.nx * params.ny * params.nz) *
                 params.iterations / rates.cpu_core_units_per_s;
  return result;
}

}  // namespace psf::apps::heat3d
