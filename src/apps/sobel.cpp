#include "apps/sobel.h"

#include <cmath>
#include <functional>

#include "pattern/api.h"
#include "support/rng.h"
#include "support/simd.h"

namespace psf::apps::sobel {

namespace {

// [psf-user-code-begin]
/// The two 3x3 Sobel masks convolved at one pixel; output is the clamped
/// gradient magnitude (the paper's 9-point stencil function).
DEVICE void sobel_fp(const void* input, void* output, const int* offset,
                     const int* size, const void* /*parameter*/) {
  const int y = offset[0];
  const int x = offset[1];
  const float gx = GET_FLOAT2(input, size, y - 1, x + 1) +
                   2.0f * GET_FLOAT2(input, size, y, x + 1) +
                   GET_FLOAT2(input, size, y + 1, x + 1) -
                   GET_FLOAT2(input, size, y - 1, x - 1) -
                   2.0f * GET_FLOAT2(input, size, y, x - 1) -
                   GET_FLOAT2(input, size, y + 1, x - 1);
  const float gy = GET_FLOAT2(input, size, y + 1, x - 1) +
                   2.0f * GET_FLOAT2(input, size, y + 1, x) +
                   GET_FLOAT2(input, size, y + 1, x + 1) -
                   GET_FLOAT2(input, size, y - 1, x - 1) -
                   2.0f * GET_FLOAT2(input, size, y - 1, x) -
                   GET_FLOAT2(input, size, y - 1, x + 1);
  const float magnitude = std::sqrt(gx * gx + gy * gy);
  GET_FLOAT2(output, size, y, x) = magnitude > 255.0f ? 255.0f : magnitude;
// [psf-user-code-end]
}

// [psf-user-code-begin]
/// Row variant of sobel_fp: `count` pixels along x from `offset`. Each
/// lane repeats the scalar expression term-for-term (no reassociation), so
/// the bytes match sobel_fp exactly whether or not the loop vectorizes.
DEVICE void sobel_row_fp(const void* input, void* output, const int* offset,
                         const int* size, int count,
                         const void* /*parameter*/) {
  const int y = offset[0];
  const int x0 = offset[1];
  const auto* in = static_cast<const float*>(input);
  auto* out = static_cast<float*>(output);
  const auto stride = static_cast<std::size_t>(size[1]);
  const float* rm = in + static_cast<std::size_t>(y - 1) * stride;
  const float* r0 = in + static_cast<std::size_t>(y) * stride;
  const float* rp = in + static_cast<std::size_t>(y + 1) * stride;
  float* dst = out + static_cast<std::size_t>(y) * stride;
  PSF_SIMD_LOOP
  for (int i = 0; i < count; ++i) {
    const int x = x0 + i;
    const float gx = rm[x + 1] + 2.0f * r0[x + 1] + rp[x + 1] - rm[x - 1] -
                     2.0f * r0[x - 1] - rp[x - 1];
    const float gy = rp[x - 1] + 2.0f * rp[x] + rp[x + 1] - rm[x - 1] -
                     2.0f * rm[x] - rm[x + 1];
    const float magnitude = std::sqrt(gx * gx + gy * gy);
    dst[x] = magnitude > 255.0f ? 255.0f : magnitude;
  }
}
// [psf-user-code-end]

/// Same operator on a plain global grid (reference kernel).
inline float sobel_reference(const std::vector<float>& in, std::size_t width,
                             std::size_t y, std::size_t x) {
  auto at = [&](std::size_t yy, std::size_t xx) { return in[yy * width + xx]; };
  const float gx = at(y - 1, x + 1) + 2.0f * at(y, x + 1) + at(y + 1, x + 1) -
                   at(y - 1, x - 1) - 2.0f * at(y, x - 1) - at(y + 1, x - 1);
  const float gy = at(y + 1, x - 1) + 2.0f * at(y + 1, x) + at(y + 1, x + 1) -
                   at(y - 1, x - 1) - 2.0f * at(y - 1, x) - at(y - 1, x + 1);
  const float magnitude = std::sqrt(gx * gx + gy * gy);
  return magnitude > 255.0f ? 255.0f : magnitude;
}

double checksum_of(std::span<const float> image) {
  double sum = 0.0;
  for (float v : image) sum += static_cast<double>(v);
  return sum;
}

}  // namespace

std::vector<float> generate_image(const Params& params) {
  support::Xoshiro256 rng(params.seed);
  std::vector<float> image(params.height * params.width);
  // Smooth diagonal gradient plus random bright rectangles (edges).
  for (std::size_t y = 0; y < params.height; ++y) {
    for (std::size_t x = 0; x < params.width; ++x) {
      image[y * params.width + x] = static_cast<float>(
          127.0 * (static_cast<double>(x + y) /
                   static_cast<double>(params.width + params.height)));
    }
  }
  const int rectangles = 12;
  for (int r = 0; r < rectangles; ++r) {
    const std::size_t y0 = rng.next_below(params.height);
    const std::size_t x0 = rng.next_below(params.width);
    const std::size_t h = 1 + rng.next_below(params.height / 4 + 1);
    const std::size_t w = 1 + rng.next_below(params.width / 4 + 1);
    const float value = static_cast<float>(rng.next_in(100.0, 255.0));
    for (std::size_t y = y0; y < std::min(params.height, y0 + h); ++y) {
      for (std::size_t x = x0; x < std::min(params.width, x0 + w); ++x) {
        image[y * params.width + x] = value;
      }
    }
  }
  return image;
}

// [psf-user-code-begin]
Result run_framework(minimpi::Communicator& comm,
                     const pattern::EnvOptions& options, const Params& params,
                     std::span<const float> image) {
  pattern::RuntimeEnv env(comm, options);
  PSF_CHECK(env.init().is_ok());
  auto* st = env.get_ST();

  st->set_stencil_func(sobel_fp);
  st->set_row_func(sobel_row_fp);
  st->set_grid(image.data(), sizeof(float), {params.height, params.width});
  st->set_halo(1);

  const double t0 = comm.timeline().now();
  PSF_CHECK(st->run(params.iterations).is_ok());
  Result result;
  result.vtime = comm.timeline().now() - t0;
  result.steady_vtime = st->stats().last_iteration_vtime;

  // Assemble the distributed result parts (excluded from the timing, like
  // the paper's write-back to disk).
  result.image.assign(image.size(), 0.0f);
  st->write_back(result.image.data());
  comm.reduce<float>(result.image, 0, [](float& a, float b) { a += b; });
  comm.bcast(std::as_writable_bytes(std::span<float>(result.image)), 0);
  result.checksum = checksum_of(result.image);
  env.finalize();
  return result;
}
// [psf-user-code-end]

Result run_sequential(const Params& params, std::span<const float> image) {
  std::vector<float> in(image.begin(), image.end());
  std::vector<float> out = in;
  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    for (std::size_t y = 1; y + 1 < params.height; ++y) {
      for (std::size_t x = 1; x + 1 < params.width; ++x) {
        out[y * params.width + x] =
            sobel_reference(in, params.width, y, x);
      }
    }
    std::swap(in, out);
  }
  Result result;
  result.image = std::move(in);
  result.checksum = checksum_of(result.image);
  const auto rates = timemodel::app_rates("sobel");
  result.vtime = static_cast<double>(params.height * params.width) *
                 params.iterations / rates.cpu_core_units_per_s;
  return result;
}

}  // namespace psf::apps::sobel
