// PSF — Pattern Specification Framework
// Deterministic, seedable random number generation for dataset synthesis.
// SplitMix64 for seeding, Xoshiro256** as the workhorse generator — fast,
// reproducible across platforms (unlike std::mt19937 distributions).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "support/error.h"

namespace psf::support {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna. Deterministic given a seed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9afc8a25b4cd1f03ULL) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float next_float() noexcept {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound). Debiased via rejection.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    PSF_CHECK(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Marsaglia polar method.
  double next_normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = next_in(-1.0, 1.0);
      v = next_in(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace psf::support
