// PSF — Pattern Specification Framework
// SIMD dispatch for host kernels.
//
// Hot per-cell kernels (stencil rows) can register a vectorized row variant
// that processes a contiguous run of cells per call. Whether the runtime
// dispatches to it is decided in two layers:
//
//   compile time  -DPSF_SIMD=ON (default) defines PSF_SIMD_ENABLED and arms
//                 the PSF_SIMD_LOOP vectorization pragma; OFF builds compile
//                 the same row kernels as plain scalar loops.
//   run time      the PSF_SIMD environment variable ("0"/"off" disables)
//                 gates dispatch, so one binary can demonstrate both paths.
//
// The contract for row kernels (docs/PERFORMANCE.md "SIMD host kernels"):
// each cell's arithmetic must be expression-for-expression identical to the
// scalar per-cell kernel — lane-parallel vectorization of independent cells
// is bit-exact (no reassociation, no FMA contraction beyond what the scalar
// build already does, no fast-math), so results are byte-identical whether
// dispatch is on or off, at every executor width. Tests enforce this.
#pragma once

#include <cstdlib>
#include <cstring>

/// Vectorization hint for the innermost run loop of a row kernel. The loop
/// body must be lane-independent (each iteration writes only its own cell).
#if defined(PSF_SIMD_ENABLED)
#if defined(__clang__)
#define PSF_SIMD_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define PSF_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define PSF_SIMD_LOOP
#endif
#else
#define PSF_SIMD_LOOP
#endif

namespace psf::support::simd {

/// True when the binary was built with -DPSF_SIMD=ON.
[[nodiscard]] constexpr bool compiled() noexcept {
#if defined(PSF_SIMD_ENABLED)
  return true;
#else
  return false;
#endif
}

/// Runtime dispatch decision: compiled in AND not disabled via the PSF_SIMD
/// environment variable ("0" or "off"). Evaluated once per process.
[[nodiscard]] inline bool enabled() noexcept {
  static const bool value = [] {
    if (!compiled()) return false;
    const char* env = std::getenv("PSF_SIMD");
    if (env == nullptr) return true;
    return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
           std::strcmp(env, "OFF") != 0;
  }();
  return value;
}

}  // namespace psf::support::simd
