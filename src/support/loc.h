// PSF — Pattern Specification Framework
// Source lines-of-code counter used by the Figure 6 (code size) experiment.
// Counts non-blank, non-comment lines, the same metric the paper's "code
// size" comparison uses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace psf::support {

struct LocReport {
  std::size_t total_lines = 0;    ///< physical lines
  std::size_t blank_lines = 0;    ///< whitespace-only
  std::size_t comment_lines = 0;  ///< //-only or inside /* */ blocks
  std::size_t code_lines = 0;     ///< everything else
};

/// Count LoC in a C/C++ source string.
LocReport count_loc(std::string_view source);

/// Count LoC summed over a list of files. Missing files are counted as zero
/// and recorded in `missing` when non-null.
LocReport count_loc_files(const std::vector<std::string>& paths,
                          std::vector<std::string>* missing = nullptr);

/// Count LoC only inside marker-delimited regions, e.g. between lines
/// containing "[psf-user-code-begin]" and "[psf-user-code-end]". Used by
/// the Figure 6 experiment to measure exactly the code an application
/// developer writes in each style (framework vs hand-written MPI).
LocReport count_loc_between_markers(std::string_view source,
                                    std::string_view begin_marker,
                                    std::string_view end_marker);

/// Marker-region LoC summed over files.
LocReport count_loc_files_between_markers(
    const std::vector<std::string>& paths, std::string_view begin_marker,
    std::string_view end_marker, std::vector<std::string>* missing = nullptr);

}  // namespace psf::support
