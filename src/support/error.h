// PSF — Pattern Specification Framework
// Error handling utilities: Status, StatusOr and checked assertions.
//
// ## The error-reporting contract
//
// The framework uses three channels, by failure class:
//
// 1. `support::Status` / `StatusOr` — RECOVERABLE, user-facing errors:
//    bad configuration (`RuntimeEnv::init`), missing preconditions
//    (pattern `start()` before user functions are set), simulated resource
//    exhaustion (`Device::alloc`). Callers inspect the code/message and can
//    retry with fixed inputs. APIs at this boundary return Status and never
//    throw it.
//
// 2. C++ exceptions — errors that unwind through USER CODE running inside
//    the framework: a user function throwing inside a pattern kernel or a
//    rank body throwing inside `minimpi::World::run`. The executor
//    (`exec::parallel_for`) and `World::run` capture the first exception
//    and rethrow it on the calling thread once in-flight work drains.
//    `World::try_run` is the Status-returning adapter for callers that
//    prefer channel 1 at the top level: it maps any rank exception to
//    `ErrorCode::kInternal` with the exception's message.
//
// 3. `PSF_CHECK` / `PSF_CHECK_MSG` — INTERNAL invariant violations
//    (framework bugs, corrupted state). These abort the process loudly;
//    they are not catchable and must never be used for input validation.
//
// Rule of thumb: validate inputs with Status, let user-code exceptions
// propagate (or use try_run), and reserve CHECKs for "this cannot happen".
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace psf::support {

/// Error categories used across the framework.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< bad user-supplied configuration
  kFailedPrecondition,///< API invoked in the wrong state (e.g. start() before
                      ///< user functions are set)
  kOutOfRange,        ///< index/extent outside the valid domain
  kResourceExhausted, ///< simulated device memory or buffer space exhausted
  kUnimplemented,     ///< feature not supported by this runtime
  kInternal,          ///< framework bug surfaced as recoverable error
  kDeviceLost,        ///< simulated accelerator died mid-run (fault plan)
  kDeadlineExceeded,  ///< blocking receive timed out (recv_deadline), or a
                      ///< served job missed its deadline / queue TTL
  kCancelled,         ///< job cancelled before or during execution (serve)
  kUnavailable,       ///< transiently unserviceable: load shed, breaker open,
                      ///< or injected chaos — safe to retry after backoff
};

/// Human-readable name for an ErrorCode.
constexpr std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kDeviceLost: return "DEVICE_LOST";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kCancelled: return "CANCELLED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

/// Inverse of to_string(ErrorCode): the code whose name matches `name`, or
/// nullopt for anything unrecognised (including "UNKNOWN"). Tools use this
/// to round-trip codes through logs and JSON; the round-trip test keeps the
/// two tables in sync when codes are added.
constexpr std::optional<ErrorCode> parse_error_code(
    std::string_view name) noexcept {
  for (const ErrorCode code : {
           ErrorCode::kOk, ErrorCode::kInvalidArgument,
           ErrorCode::kFailedPrecondition, ErrorCode::kOutOfRange,
           ErrorCode::kResourceExhausted, ErrorCode::kUnimplemented,
           ErrorCode::kInternal, ErrorCode::kDeviceLost,
           ErrorCode::kDeadlineExceeded, ErrorCode::kCancelled,
           ErrorCode::kUnavailable,
       }) {
    if (to_string(code) == name) return code;
  }
  return std::nullopt;
}

/// Lightweight status value: an ErrorCode plus a message.
/// A default-constructed Status is OK.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }
  static Status invalid_argument(std::string msg) {
    return {ErrorCode::kInvalidArgument, std::move(msg)};
  }
  static Status failed_precondition(std::string msg) {
    return {ErrorCode::kFailedPrecondition, std::move(msg)};
  }
  static Status out_of_range(std::string msg) {
    return {ErrorCode::kOutOfRange, std::move(msg)};
  }
  static Status resource_exhausted(std::string msg) {
    return {ErrorCode::kResourceExhausted, std::move(msg)};
  }
  static Status unimplemented(std::string msg) {
    return {ErrorCode::kUnimplemented, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {ErrorCode::kInternal, std::move(msg)};
  }
  static Status device_lost(std::string msg) {
    return {ErrorCode::kDeviceLost, std::move(msg)};
  }
  static Status deadline_exceeded(std::string msg) {
    return {ErrorCode::kDeadlineExceeded, std::move(msg)};
  }
  static Status cancelled(std::string msg) {
    return {ErrorCode::kCancelled, std::move(msg)};
  }
  static Status unavailable(std::string msg) {
    return {ErrorCode::kUnavailable, std::move(msg)};
  }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "OK";
    std::string out{support::to_string(code_)};
    out += ": ";
    out += message_;
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Minimal expected-like wrapper: either a value of T or an error Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT implicit
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT implicit

  [[nodiscard]] bool is_ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & {
    check_has_value();
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    check_has_value();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    check_has_value();
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  void check_has_value() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "psf: StatusOr accessed without value: %s\n",
                   status_.to_string().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr,
                                      const std::string& extra) {
  std::fprintf(stderr, "psf: CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}
}  // namespace detail

}  // namespace psf::support

/// Hard invariant check. Always enabled — the framework is a runtime whose
/// internal corruption must never propagate into user results silently.
#define PSF_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::psf::support::detail::check_failed(__FILE__, __LINE__, #expr, {});  \
    }                                                                       \
  } while (0)

/// Hard invariant check with streamed context message.
#define PSF_CHECK_MSG(expr, ...)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream psf_check_oss_;                                    \
      psf_check_oss_ << __VA_ARGS__;                                        \
      ::psf::support::detail::check_failed(__FILE__, __LINE__, #expr,       \
                                           psf_check_oss_.str());           \
    }                                                                       \
  } while (0)

/// Propagate a non-OK Status from the current function.
#define PSF_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::psf::support::Status psf_status_ = (expr);    \
    if (!psf_status_.is_ok()) return psf_status_;   \
  } while (0)
