#include "support/metrics.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace psf::metrics {

namespace {

/// Escape for JSON string values (names are framework-generated but may
/// carry device labels or user-provided profile keys).
std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip double formatting — deterministic across runs and
/// platforms for the IEEE values we emit.
std::string fmt_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Serializes concurrent write_json() calls (e.g. every rank's finalize
/// naming the same path) so the last complete report wins intact.
std::mutex& file_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

Registry::Registry()
    : uid_([] {
        static std::atomic<std::uint64_t> next_uid{1};
        return next_uid.fetch_add(1, std::memory_order_relaxed);
      }()) {}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Timer& Registry::timer(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>()).first;
  }
  return *it->second;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, timer] : timers_) timer->reset();
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> Registry::gauges() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::map<std::string, Registry::TimerSample> Registry::timers() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::map<std::string, TimerSample> out;
  for (const auto& [name, timer] : timers_) {
    out[name] = {timer->count(), timer->seconds()};
  }
  return out;
}

std::string Registry::to_json() const {
  const auto counter_values = counters();
  const auto gauge_values = gauges();
  const auto timer_values = timers();

  std::ostringstream json;
  json << "{\"schema\":\"psf.metrics\",\"version\":1,";
  json << "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counter_values) {
    if (!first) json << ",";
    first = false;
    json << "\"" << escape(name) << "\":" << value;
  }
  json << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauge_values) {
    if (!first) json << ",";
    first = false;
    json << "\"" << escape(name) << "\":" << fmt_double(value);
  }
  json << "},\"timers\":{";
  first = true;
  for (const auto& [name, sample] : timer_values) {
    if (!first) json << ",";
    first = false;
    json << "\"" << escape(name) << "\":{\"count\":" << sample.count
         << ",\"seconds\":" << fmt_double(sample.seconds) << "}";
  }
  json << "}}";
  return json.str();
}

bool Registry::write_json(const std::string& path) const {
  const std::string report = to_json();
  std::lock_guard<std::mutex> guard(file_mutex());
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << report << "\n";
  return static_cast<bool>(out);
}

Registry& Registry::global() {
  // Leaked on purpose: instruments may be touched from worker threads that
  // outlive main()'s statics; the atexit dump runs before static teardown.
  static Registry* instance = [] {
    auto* registry = new Registry();
    std::atexit([] {
      if (const char* path = std::getenv("PSF_METRICS")) {
        if (*path != '\0') Registry::global().write_json(path);
      }
    });
    return registry;
  }();
  return *instance;
}

// --- minimal JSON validator ---------------------------------------------------

namespace {

struct JsonCursor {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }
  void skip_ws() {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t' ||
                       text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }
  bool consume(char c) {
    if (done() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  bool consume_literal(std::string_view literal) {
    if (text.substr(pos, literal.size()) != literal) return false;
    pos += literal.size();
    return true;
  }

  bool parse_string() {
    if (!consume('"')) return false;
    while (!done()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (done()) return false;
        const char esc = text[pos++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (done() || std::isxdigit(static_cast<unsigned char>(
                              text[pos])) == 0) {
              return false;
            }
            ++pos;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number() {
    const std::size_t start = pos;
    consume('-');
    while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    if (consume('.')) {
      if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        return false;
      }
      while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos;
      if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        return false;
      }
      while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    // At least one digit overall (a bare "-" is invalid).
    return pos > start + (text[start] == '-' ? 1u : 0u);
  }

  bool parse_value(int depth) {
    if (depth > 64) return false;  // defense against pathological nesting
    skip_ws();
    if (done()) return false;
    const char c = peek();
    if (c == '{') {
      ++pos;
      skip_ws();
      if (consume('}')) return true;
      for (;;) {
        skip_ws();
        if (!parse_string()) return false;
        skip_ws();
        if (!consume(':')) return false;
        if (!parse_value(depth + 1)) return false;
        skip_ws();
        if (consume('}')) return true;
        if (!consume(',')) return false;
      }
    }
    if (c == '[') {
      ++pos;
      skip_ws();
      if (consume(']')) return true;
      for (;;) {
        if (!parse_value(depth + 1)) return false;
        skip_ws();
        if (consume(']')) return true;
        if (!consume(',')) return false;
      }
    }
    if (c == '"') return parse_string();
    if (c == 't') return consume_literal("true");
    if (c == 'f') return consume_literal("false");
    if (c == 'n') return consume_literal("null");
    return parse_number();
  }
};

}  // namespace

bool validate_json(std::string_view text) {
  JsonCursor cursor{text};
  if (!cursor.parse_value(0)) return false;
  cursor.skip_ws();
  return cursor.done();
}

}  // namespace psf::metrics
