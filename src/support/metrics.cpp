#include "support/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace psf::metrics {

namespace {

/// Escape for JSON string values (names are framework-generated but may
/// carry device labels or user-provided profile keys).
std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip double formatting — deterministic across runs and
/// platforms for the IEEE values we emit.
std::string fmt_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Serializes concurrent write_json() calls (e.g. every rank's finalize
/// naming the same path) so the last complete report wins intact.
std::mutex& file_mutex() {
  static std::mutex mutex;
  return mutex;
}

/// JSON has no infinity literal; the overflow bucket's bound (and a
/// recorded +/-inf extremum) serialize as the largest finite double.
std::string fmt_double_json(double value) {
  if (std::isinf(value)) {
    value = std::copysign(std::numeric_limits<double>::max(), value);
  } else if (std::isnan(value)) {
    value = 0.0;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

// --- Histogram ---------------------------------------------------------------

namespace {

/// Lock-free monotonic min/max merge on an atomic double.
void atomic_min(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t Histogram::bucket_index(double value) noexcept {
  if (!(value > 0.0) || std::isinf(value)) {
    // Zero, negatives and NaN share the underflow bucket; +inf overflows.
    return std::isinf(value) && value > 0.0 ? kNumBuckets - 1 : 0;
  }
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  if (exp <= kMinExp) return 0;
  if (exp > kMaxExp) return kNumBuckets - 1;
  const auto sub = static_cast<std::size_t>(
      (mantissa - 0.5) * 2.0 * static_cast<double>(kSubBuckets));
  std::size_t index = static_cast<std::size_t>(exp - 1 - kMinExp) * kSubBuckets +
                      std::min<std::size_t>(sub, kSubBuckets - 1) + 1;
  // Buckets are (lower, upper]: a value landing exactly on its bucket's lower
  // bound (e.g. an exact power of two) belongs to the previous bucket.
  if (value <= bucket_upper(index - 1)) --index;
  return index;
}

double Histogram::bucket_upper(std::size_t index) noexcept {
  if (index == 0) return std::ldexp(1.0, kMinExp);  // underflow bound
  if (index >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const std::size_t linear = index - 1;
  const int exp = kMinExp + static_cast<int>(linear / kSubBuckets);
  const auto sub = static_cast<double>(linear % kSubBuckets);
  return std::ldexp(0.5 + (sub + 1.0) / (2.0 * kSubBuckets), exp + 1);
}

void Histogram::record(double value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
  atomic_min(min_, value);
  atomic_max(max_, value);
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const { return snapshot().quantile(q); }

void Histogram::merge_from(const Histogram& other) noexcept {
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    const std::uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  const std::uint64_t other_count =
      other.count_.load(std::memory_order_relaxed);
  if (other_count == 0) return;
  count_.fetch_add(other_count, std::memory_order_relaxed);
  const double other_sum = other.sum_.load(std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + other_sum,
                                     std::memory_order_relaxed)) {
  }
  atomic_min(min_, other.min_.load(std::memory_order_relaxed));
  atomic_max(max_, other.max_.load(std::memory_order_relaxed));
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.count = count();
  snap.sum = sum();
  snap.min = min();
  snap.max = max();
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    const std::uint64_t n = buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) snap.buckets.emplace_back(bucket_upper(b), n);
  }
  return snap;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q >= 1.0) return max;
  if (q <= 0.0) return min;
  const double clamped = q;
  // Nearest rank: the ceil(q * count)-th sample (1-based), at least the 1st.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (const auto& [upper, n] : buckets) {
    cumulative += n;
    if (cumulative >= rank) return std::clamp(upper, min, max);
  }
  return max;  // unreachable when buckets and count agree
}

Registry::Registry()
    : uid_([] {
        static std::atomic<std::uint64_t> next_uid{1};
        return next_uid.fetch_add(1, std::memory_order_relaxed);
      }()) {}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Timer& Registry::timer(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, timer] : timers_) timer->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> Registry::gauges() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::map<std::string, Registry::TimerSample> Registry::timers() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::map<std::string, TimerSample> out;
  for (const auto& [name, timer] : timers_) {
    out[name] = {timer->count(), timer->seconds()};
  }
  return out;
}

std::string histogram_snapshot_json(const Histogram::Snapshot& snap) {
  std::ostringstream json;
  json << "{\"count\":" << snap.count << ",\"sum\":"
       << fmt_double_json(snap.sum) << ",\"min\":"
       << fmt_double_json(snap.min) << ",\"max\":"
       << fmt_double_json(snap.max) << ",\"p50\":"
       << fmt_double_json(snap.quantile(0.50)) << ",\"p90\":"
       << fmt_double_json(snap.quantile(0.90)) << ",\"p99\":"
       << fmt_double_json(snap.quantile(0.99)) << ",\"buckets\":[";
  bool first = true;
  for (const auto& [upper, count] : snap.buckets) {
    if (!first) json << ",";
    first = false;
    json << "[" << fmt_double_json(upper) << "," << count << "]";
  }
  json << "]}";
  return json.str();
}

std::map<std::string, Histogram::Snapshot> Registry::histograms() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::map<std::string, Histogram::Snapshot> out;
  for (const auto& [name, histogram] : histograms_) {
    out[name] = histogram->snapshot();
  }
  return out;
}

std::string Registry::to_json() const {
  const auto counter_values = counters();
  const auto gauge_values = gauges();
  const auto timer_values = timers();
  const auto histogram_values = histograms();

  std::ostringstream json;
  json << "{\"schema\":\"psf.metrics\",\"version\":1,";
  json << "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counter_values) {
    if (!first) json << ",";
    first = false;
    json << "\"" << escape(name) << "\":" << value;
  }
  json << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauge_values) {
    if (!first) json << ",";
    first = false;
    json << "\"" << escape(name) << "\":" << fmt_double(value);
  }
  json << "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : histogram_values) {
    if (!first) json << ",";
    first = false;
    json << "\"" << escape(name) << "\":" << histogram_snapshot_json(snap);
  }
  json << "},\"timers\":{";
  first = true;
  for (const auto& [name, sample] : timer_values) {
    if (!first) json << ",";
    first = false;
    json << "\"" << escape(name) << "\":{\"count\":" << sample.count
         << ",\"seconds\":" << fmt_double(sample.seconds) << "}";
  }
  json << "}}";
  return json.str();
}

bool Registry::write_json(const std::string& path) const {
  const std::string report = to_json();
  std::lock_guard<std::mutex> guard(file_mutex());
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << report << "\n";
  return static_cast<bool>(out);
}

Registry& Registry::global() {
  // Leaked on purpose: instruments may be touched from worker threads that
  // outlive main()'s statics; the atexit dump runs before static teardown.
  static Registry* instance = [] {
    auto* registry = new Registry();
    std::atexit([] {
      if (const char* path = std::getenv("PSF_METRICS")) {
        if (*path != '\0') Registry::global().write_json(path);
      }
    });
    return registry;
  }();
  return *instance;
}

// --- minimal JSON validator ---------------------------------------------------

namespace {

struct JsonCursor {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }
  void skip_ws() {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t' ||
                       text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }
  bool consume(char c) {
    if (done() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  bool consume_literal(std::string_view literal) {
    if (text.substr(pos, literal.size()) != literal) return false;
    pos += literal.size();
    return true;
  }

  bool parse_string() {
    if (!consume('"')) return false;
    while (!done()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (done()) return false;
        const char esc = text[pos++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (done() || std::isxdigit(static_cast<unsigned char>(
                              text[pos])) == 0) {
              return false;
            }
            ++pos;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number() {
    const std::size_t start = pos;
    consume('-');
    while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    if (consume('.')) {
      if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        return false;
      }
      while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos;
      if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        return false;
      }
      while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    // At least one digit overall (a bare "-" is invalid).
    return pos > start + (text[start] == '-' ? 1u : 0u);
  }

  bool parse_value(int depth) {
    if (depth > 64) return false;  // defense against pathological nesting
    skip_ws();
    if (done()) return false;
    const char c = peek();
    if (c == '{') {
      ++pos;
      skip_ws();
      if (consume('}')) return true;
      for (;;) {
        skip_ws();
        if (!parse_string()) return false;
        skip_ws();
        if (!consume(':')) return false;
        if (!parse_value(depth + 1)) return false;
        skip_ws();
        if (consume('}')) return true;
        if (!consume(',')) return false;
      }
    }
    if (c == '[') {
      ++pos;
      skip_ws();
      if (consume(']')) return true;
      for (;;) {
        if (!parse_value(depth + 1)) return false;
        skip_ws();
        if (consume(']')) return true;
        if (!consume(',')) return false;
      }
    }
    if (c == '"') return parse_string();
    if (c == 't') return consume_literal("true");
    if (c == 'f') return consume_literal("false");
    if (c == 'n') return consume_literal("null");
    return parse_number();
  }
};

}  // namespace

bool validate_json(std::string_view text) {
  JsonCursor cursor{text};
  if (!cursor.parse_value(0)) return false;
  cursor.skip_ws();
  return cursor.done();
}

}  // namespace psf::metrics
