// PSF — Pattern Specification Framework
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
//
// Used by minimpi's fault-injection path to checksum message payloads so
// the receiver can reject corrupted deliveries (docs/RESILIENCE.md). The
// table is built at compile time; the per-byte loop is the classic
// reflected table-driven form. Known-answer: crc32("123456789") ==
// 0xCBF43926.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace psf::support {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1U) != 0 ? 0xEDB88320U : 0U);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC-32 of `bytes`, optionally continuing from a previous crc (pass the
/// prior return value as `seed` to checksum data in pieces).
constexpr std::uint32_t crc32(std::span<const std::byte> bytes,
                              std::uint32_t seed = 0) noexcept {
  std::uint32_t crc = ~seed;
  for (const std::byte b : bytes) {
    crc = (crc >> 8) ^
          detail::kCrc32Table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFU];
  }
  return ~crc;
}

}  // namespace psf::support
