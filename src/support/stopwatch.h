// PSF — Pattern Specification Framework
// Wall-clock stopwatch (host time). Virtual/simulated time lives in
// timemodel; this is for real measurements and test timeouts.
#pragma once

#include <chrono>

namespace psf::support {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace psf::support
