// PSF — Pattern Specification Framework
// Aligned, uninitialized byte buffers. Used for simulated device memory,
// pinned host staging buffers and message payloads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <utility>

#include "support/error.h"

namespace psf::support {

/// Owning, cache-line-aligned raw byte buffer. Contents start zeroed.
class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t size_bytes) { resize(size_bytes); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { release(); }

  /// Reallocate to `size_bytes`; contents are zeroed (not preserved).
  void resize(std::size_t size_bytes) {
    release();
    if (size_bytes == 0) return;
    data_ = static_cast<std::byte*>(
        ::operator new(size_bytes, std::align_val_t{kAlignment}));
    std::memset(data_, 0, size_bytes);
    size_ = size_bytes;
  }

  [[nodiscard]] std::byte* data() noexcept { return data_; }
  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] std::span<std::byte> bytes() noexcept {
    return {data_, size_};
  }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {data_, size_};
  }

  /// Typed view of the buffer; the element count is size()/sizeof(T).
  template <typename T>
  [[nodiscard]] std::span<T> as() noexcept {
    return {reinterpret_cast<T*>(data_), size_ / sizeof(T)};
  }
  template <typename T>
  [[nodiscard]] std::span<const T> as() const noexcept {
    return {reinterpret_cast<const T*>(data_), size_ / sizeof(T)};
  }

 private:
  void release() noexcept {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kAlignment});
      data_ = nullptr;
      size_ = 0;
    }
  }

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Copy `count` bytes between spans with bounds checking.
inline void copy_bytes(std::span<std::byte> dst, std::size_t dst_offset,
                       std::span<const std::byte> src, std::size_t src_offset,
                       std::size_t count) {
  PSF_CHECK_MSG(dst_offset + count <= dst.size(),
                "copy_bytes dst overflow: " << dst_offset << "+" << count
                                            << " > " << dst.size());
  PSF_CHECK_MSG(src_offset + count <= src.size(),
                "copy_bytes src overflow: " << src_offset << "+" << count
                                            << " > " << src.size());
  std::memcpy(dst.data() + dst_offset, src.data() + src_offset, count);
}

}  // namespace psf::support
