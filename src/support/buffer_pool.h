// PSF — Pattern Specification Framework
// Size-classed buffer pool for allocation-free steady-state hot paths.
//
// Message payloads, halo staging buffers and serialized reduction blobs are
// acquired and released at high frequency with a small set of recurring
// sizes. The pool rounds each request up to a power-of-two size class and
// recycles released storage through per-class free lists, so after a warm-up
// phase the steady state performs zero heap allocations on the message path
// (pinned by the `support.pool.misses` / `minimpi.payload_allocs` counters
// and asserted by CI on the bench-smoke report).
//
// Concurrency: acquire/release are thread-safe; each size class has its own
// lock so ranks exchanging different message sizes never contend. A
// `PooledBuffer` handle itself is a move-only single-owner value.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "support/buffer.h"

namespace psf::support {

class BufferPool;

/// Move-only RAII handle to pooled storage. The logical size is the byte
/// count requested from `BufferPool::acquire`; the backing capacity is the
/// (power-of-two) size class. Destruction returns the storage to the pool.
/// Reused buffers are NOT zeroed — callers overwrite them (pack/memcpy)
/// before any read. A default-constructed handle is empty.
class PooledBuffer {
 public:
  PooledBuffer() = default;

  PooledBuffer(PooledBuffer&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        storage_(std::move(other.storage_)),
        size_(std::exchange(other.size_, 0)),
        fresh_(std::exchange(other.fresh_, false)) {}

  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = std::exchange(other.pool_, nullptr);
      storage_ = std::move(other.storage_);
      size_ = std::exchange(other.size_, 0);
      fresh_ = std::exchange(other.fresh_, false);
    }
    return *this;
  }

  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  ~PooledBuffer() { release(); }

  [[nodiscard]] std::byte* data() noexcept { return storage_.data(); }
  [[nodiscard]] const std::byte* data() const noexcept {
    return storage_.data();
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return storage_.size();
  }

  [[nodiscard]] std::span<std::byte> bytes() noexcept {
    return {storage_.data(), size_};
  }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {storage_.data(), size_};
  }

  [[nodiscard]] std::byte& operator[](std::size_t i) noexcept {
    return storage_.data()[i];
  }
  [[nodiscard]] const std::byte& operator[](std::size_t i) const noexcept {
    return storage_.data()[i];
  }

  /// True when acquiring this buffer heap-allocated (pool miss); false for
  /// recycled storage. Survives moves — minimpi charges the
  /// `minimpi.payload_allocs` counter off this flag at delivery time.
  [[nodiscard]] bool fresh() const noexcept { return fresh_; }

  /// Return the storage to the pool now (destructor semantics, idempotent).
  void release() noexcept;

 private:
  friend class BufferPool;
  PooledBuffer(BufferPool* pool, AlignedBuffer storage, std::size_t size,
               bool fresh) noexcept
      : pool_(pool), storage_(std::move(storage)), size_(size),
        fresh_(fresh) {}

  BufferPool* pool_ = nullptr;
  AlignedBuffer storage_;
  std::size_t size_ = 0;
  bool fresh_ = false;
};

/// Thread-safe, size-classed free-list allocator for PooledBuffers.
///
/// Size classes are powers of two from kMinClassBytes to kMaxClassBytes;
/// requests above the largest class are served by a direct allocation and
/// freed on release (never cached). Zero-byte requests return an empty
/// handle without touching the pool.
class BufferPool {
 public:
  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr std::size_t kMaxClassBytes = std::size_t{1} << 26;  // 64 MB
  /// Free-list depth per class; releases beyond it free the storage so one
  /// burst cannot pin memory forever.
  static constexpr std::size_t kMaxCachedPerClass = 1024;

  BufferPool() = default;
  ~BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Get a buffer with logical size `bytes` (capacity = its size class).
  /// Recycled storage is returned verbatim (not zeroed); fresh storage is
  /// zero-initialized by AlignedBuffer.
  [[nodiscard]] PooledBuffer acquire(std::size_t bytes);

  /// Drop every cached free buffer (tests / memory pressure). Outstanding
  /// buffers are unaffected and still return to the pool.
  void trim();

  /// Top up every in-use size class with allocation headroom: a class
  /// caching n buffers afterwards holds at least n * multiplier + extra
  /// (capped at kMaxCachedPerClass). Bench drivers call this at a quiescent
  /// point between warm-up and measurement, so scheduling variance in the
  /// peak number of in-flight buffers cannot cause steady-state misses.
  /// Classes that were never used stay empty.
  void prewarm(std::size_t multiplier = 2, std::size_t extra = 8);

  // --- statistics (programmatic, independent of PSF_DISABLE_METRICS) -------

  /// Acquires served from a free list.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  /// Acquires that heap-allocated.
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Sum of logical bytes served from recycled storage.
  [[nodiscard]] std::uint64_t bytes_reused() const noexcept {
    return bytes_reused_.load(std::memory_order_relaxed);
  }
  /// Buffers currently held by callers (leak check: a quiescent process
  /// returns to its baseline).
  [[nodiscard]] std::uint64_t outstanding() const noexcept {
    return outstanding_.load(std::memory_order_relaxed);
  }
  /// Capacity bytes parked in free lists right now.
  [[nodiscard]] std::uint64_t cached_bytes() const;

  /// The process-wide pool the message path draws from.
  static BufferPool& global();

 private:
  friend class PooledBuffer;

  static constexpr std::size_t kNumClasses = 21;  // 2^6 .. 2^26

  /// Size-class index for `bytes`, or kNumClasses for oversize requests.
  static std::size_t class_index(std::size_t bytes) noexcept;
  /// Capacity of class `index`.
  static std::size_t class_bytes(std::size_t index) noexcept {
    return kMinClassBytes << index;
  }

  void release_storage(AlignedBuffer storage) noexcept;

  struct FreeList {
    std::mutex mutex;
    std::vector<AlignedBuffer> buffers;
  };

  std::array<FreeList, kNumClasses> classes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> bytes_reused_{0};
  std::atomic<std::uint64_t> outstanding_{0};
};

inline void PooledBuffer::release() noexcept {
  if (pool_ != nullptr) {
    BufferPool* pool = std::exchange(pool_, nullptr);
    pool->release_storage(std::move(storage_));
  } else {
    storage_ = AlignedBuffer();
  }
  size_ = 0;
  fresh_ = false;
}

}  // namespace psf::support
