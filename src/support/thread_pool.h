// PSF — Pattern Specification Framework
// Fixed-size thread pool with a parallel_for helper. The simulated GPU's
// SM executors and the per-node CPU worker threads are built on this.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.h"

namespace psf::support {

/// A fixed pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for completion/exception propagation.
  std::future<void> submit(std::function<void()> task);

  /// Run `body(i)` for i in [0, count) across the pool and wait for all.
  /// The calling thread also participates, so a pool of N threads yields
  /// N+1-way concurrency for the duration of the call.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace psf::support
