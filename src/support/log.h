// PSF — Pattern Specification Framework
// Minimal leveled logger. Thread-safe, writes to stderr. Controlled by
// PSF_LOG_LEVEL (env var or set_level): error < warn < info < debug < trace.
//
// Output format (PSF_LOG_FORMAT or set_format):
//   text (default)  [psf:W] component: message
//   json            one JSON object per line with a monotonic timestamp,
//                   level, component, the ambient job id (when the line was
//                   emitted under a serve JobScope) and the message —
//                   machine-tailable alongside the psf.telemetry stream.
//
// Repeated IDENTICAL warn/error lines are rate-limited with a token bucket
// per (level, component): a burst passes through, further duplicates are
// swallowed and later acknowledged with one "suppressed N duplicates"
// summary line. Distinct messages are never suppressed.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace psf::support {

enum class LogLevel : std::uint8_t {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

enum class LogFormat : std::uint8_t {
  kText = 0,
  kJson = 1,
};

/// Global logger configuration and sink.
class Log {
 public:
  /// Current threshold; messages above it are dropped.
  static LogLevel level() noexcept;
  static void set_level(LogLevel level) noexcept;

  /// Parse "error"/"warn"/"info"/"debug"/"trace" (case-insensitive).
  static LogLevel parse_level(std::string_view text) noexcept;

  /// Current output format (PSF_LOG_FORMAT=json selects JSON at startup).
  static LogFormat format() noexcept;
  static void set_format(LogFormat format) noexcept;

  /// Duplicate rate limit for warn/error lines: up to `burst` identical
  /// lines pass immediately, then one more token per `per_second` interval.
  /// `burst <= 0` disables suppression. Applies per (level, component).
  static void set_rate_limit(double burst, double per_second) noexcept;

  /// Test hook: when non-null, fully formatted lines (minus the trailing
  /// newline) go to `sink` instead of stderr. Suppression summaries pass
  /// through the same sink. Reset with nullptr.
  static void set_sink_for_testing(void (*sink)(LogLevel level,
                                                const std::string& line));

  /// Emit one line (already formatted) at `level`.
  static void write(LogLevel level, std::string_view component,
                    std::string_view message);
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Log::write(level_, component_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace psf::support

/// Streamed logging, e.g. PSF_LOG(kInfo, "stencil") << "halo bytes=" << n;
#define PSF_LOG(level_enum, component)                                        \
  if (::psf::support::LogLevel::level_enum > ::psf::support::Log::level()) {  \
  } else                                                                      \
    ::psf::support::detail::LogLine(::psf::support::LogLevel::level_enum,     \
                                    (component))
