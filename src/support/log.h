// PSF — Pattern Specification Framework
// Minimal leveled logger. Thread-safe, writes to stderr. Controlled by
// PSF_LOG_LEVEL (env var or set_level): error < warn < info < debug < trace.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace psf::support {

enum class LogLevel : std::uint8_t {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

/// Global logger configuration and sink.
class Log {
 public:
  /// Current threshold; messages above it are dropped.
  static LogLevel level() noexcept;
  static void set_level(LogLevel level) noexcept;

  /// Parse "error"/"warn"/"info"/"debug"/"trace" (case-insensitive).
  static LogLevel parse_level(std::string_view text) noexcept;

  /// Emit one line (already formatted) at `level`.
  static void write(LogLevel level, std::string_view component,
                    std::string_view message);
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Log::write(level_, component_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace psf::support

/// Streamed logging, e.g. PSF_LOG(kInfo, "stencil") << "halo bytes=" << n;
#define PSF_LOG(level_enum, component)                                        \
  if (::psf::support::LogLevel::level_enum > ::psf::support::Log::level()) {  \
  } else                                                                      \
    ::psf::support::detail::LogLine(::psf::support::LogLevel::level_enum,     \
                                    (component))
