#include "support/loc.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace psf::support {


LocReport count_loc(std::string_view source) {
  LocReport report;
  bool in_block_comment = false;

  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    const std::string_view line =
        source.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                         : eol - pos);
    if (eol == std::string_view::npos && line.empty() && pos == source.size()) {
      break;  // no trailing partial line
    }
    ++report.total_lines;

    // Classify: walk the line tracking block comments; a line counts as code
    // if any non-comment, non-whitespace character appears on it.
    bool has_code = false;
    bool has_comment = in_block_comment;
    std::size_t i = 0;
    while (i < line.size()) {
      if (in_block_comment) {
        const std::size_t end = line.find("*/", i);
        has_comment = true;
        if (end == std::string_view::npos) {
          i = line.size();
        } else {
          in_block_comment = false;
          i = end + 2;
        }
        continue;
      }
      if (i + 1 < line.size() && line[i] == '/' && line[i + 1] == '/') {
        has_comment = true;
        break;  // rest of line is a comment
      }
      if (i + 1 < line.size() && line[i] == '/' && line[i + 1] == '*') {
        in_block_comment = true;
        has_comment = true;
        i += 2;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(line[i]))) has_code = true;
      ++i;
    }

    if (has_code) {
      ++report.code_lines;
    } else if (has_comment) {
      ++report.comment_lines;
    } else {
      ++report.blank_lines;
    }

    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return report;
}

LocReport count_loc_between_markers(std::string_view source,
                                    std::string_view begin_marker,
                                    std::string_view end_marker) {
  LocReport total;
  std::size_t cursor = 0;
  for (;;) {
    const std::size_t begin = source.find(begin_marker, cursor);
    if (begin == std::string_view::npos) break;
    const std::size_t region_start = source.find('\n', begin);
    if (region_start == std::string_view::npos) break;
    std::size_t end = source.find(end_marker, region_start);
    if (end == std::string_view::npos) end = source.size();
    // Trim back to the start of the end-marker line.
    std::size_t region_end = source.rfind('\n', end);
    if (region_end == std::string_view::npos || region_end < region_start) {
      region_end = end;
    }
    const LocReport region = count_loc(
        source.substr(region_start + 1, region_end - region_start - 1));
    total.total_lines += region.total_lines;
    total.blank_lines += region.blank_lines;
    total.comment_lines += region.comment_lines;
    total.code_lines += region.code_lines;
    cursor = end + end_marker.size();
    if (cursor >= source.size()) break;
  }
  return total;
}

LocReport count_loc_files_between_markers(
    const std::vector<std::string>& paths, std::string_view begin_marker,
    std::string_view end_marker, std::vector<std::string>* missing) {
  LocReport total;
  for (const auto& path : paths) {
    std::ifstream in(path);
    if (!in) {
      if (missing != nullptr) missing->push_back(path);
      continue;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    const std::string text = contents.str();
    const LocReport one =
        count_loc_between_markers(text, begin_marker, end_marker);
    total.total_lines += one.total_lines;
    total.blank_lines += one.blank_lines;
    total.comment_lines += one.comment_lines;
    total.code_lines += one.code_lines;
  }
  return total;
}

LocReport count_loc_files(const std::vector<std::string>& paths,
                          std::vector<std::string>* missing) {
  LocReport total;
  for (const auto& path : paths) {
    std::ifstream in(path);
    if (!in) {
      if (missing != nullptr) missing->push_back(path);
      continue;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    const LocReport one = count_loc(contents.str());
    total.total_lines += one.total_lines;
    total.blank_lines += one.blank_lines;
    total.comment_lines += one.comment_lines;
    total.code_lines += one.code_lines;
  }
  return total;
}

}  // namespace psf::support
