#include "support/thread_pool.h"

#include <atomic>

namespace psf::support {

ThreadPool::ThreadPool(std::size_t num_threads) {
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> guard(mutex_);
    PSF_CHECK_MSG(!shutting_down_, "submit() on a shut-down ThreadPool");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Shared work state: every participant pulls the next index; a failure
  // on any participant stops the others at their next pull. The calling
  // thread participates, so the pool works even with zero workers.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
  };
  auto state = std::make_shared<State>();
  auto run = [state, count, &body] {
    for (;;) {
      if (state->failed.load(std::memory_order_relaxed)) return;
      const std::size_t i =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      body(i);
    }
  };
  std::vector<std::future<void>> futures;
  const std::size_t helpers = threads_.size() < count ? threads_.size()
                                                      : count - 1;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futures.push_back(submit(run));

  // Every participant must finish before we return (the body reference
  // dies with this frame); the first exception wins and is rethrown.
  std::exception_ptr first_error;
  try {
    run();
  } catch (...) {
    first_error = std::current_exception();
    state->failed.store(true, std::memory_order_relaxed);
  }
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
      state->failed.store(true, std::memory_order_relaxed);
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace psf::support
