// PSF — Pattern Specification Framework
// Ambient per-thread context slots — the substrate behind multi-tenant
// isolation (docs/SERVING.md).
//
// Historically every observability registry was process-global: one metrics
// Registry, one FaultLog. A long-lived server multiplexing many concurrent
// jobs onto shared ranks/executors needs each job's counters, fault events
// and context to stay separate. Rather than threading a context parameter
// through every layer (and every PSF_METRIC_* call site), each subsystem
// resolves its "current" registry through a thread-local slot here:
//
//   * empty slot (the default, and the entire pre-serve world) -> the
//     process-global singleton, byte-for-byte the old behaviour;
//   * a scoped override (serve::JobScope, metrics::ScopedRegistry,
//     fault::ScopedFaultLog) -> that job's instance.
//
// The slots are opaque `void*` so this header stays at the bottom of the
// dependency stack: support does not know about fault or serve, yet
// exec::ThreadPool can capture EVERY slot at task-submission time and
// re-install the snapshot around task execution on a worker thread. That
// hop is what keeps attribution correct when jobs share one work-stealing
// executor — a worker may interleave tasks from different jobs, and a rank
// thread helping while it waits may execute another job's task.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace psf::support::ambient {

/// The fixed set of propagated slots. Each belongs to one subsystem, which
/// defines the pointee type and the scoped guard that installs it.
enum class Slot : std::size_t {
  kMetricsRegistry = 0,  ///< metrics::Registry* (metrics::ScopedRegistry)
  kFaultLog = 1,         ///< fault::FaultLog* (fault::ScopedFaultLog)
  kJobContext = 2,       ///< serve::JobContext* (serve::JobScope)
  kJobId = 3,            ///< job id + 1 encoded as void* (serve::JobScope);
                         ///< lets support/log.cpp attribute lines to the
                         ///< ambient job without depending on serve
};
inline constexpr std::size_t kNumSlots = 4;

namespace detail {
extern thread_local std::array<void*, kNumSlots> tls_slots;
}  // namespace detail

/// The calling thread's value for `slot`; nullptr = no override installed.
[[nodiscard]] inline void* get(Slot slot) noexcept {
  return detail::tls_slots[static_cast<std::size_t>(slot)];
}

/// Install `value` in `slot` on the calling thread; returns the previous
/// value so scoped guards can restore it (overrides nest).
inline void* swap(Slot slot, void* value) noexcept {
  void*& entry = detail::tls_slots[static_cast<std::size_t>(slot)];
  void* previous = entry;
  entry = value;
  return previous;
}

/// Encode `id` for the kJobId slot: id + 1, so an empty slot (nullptr)
/// reads as "no job" without colliding with job id 0.
[[nodiscard]] inline void* encode_job_id(std::uint64_t id) noexcept {
  return reinterpret_cast<void*>(static_cast<std::uintptr_t>(id + 1));
}

/// Decode the kJobId slot: the ambient job id, or 0 when the calling thread
/// runs outside any job (serve issues ids starting at 1).
[[nodiscard]] inline std::uint64_t current_job_id() noexcept {
  const auto raw = reinterpret_cast<std::uintptr_t>(get(Slot::kJobId));
  return raw == 0 ? 0 : static_cast<std::uint64_t>(raw - 1);
}

/// Point-in-time copy of every slot. exec::ThreadPool captures one per
/// submitted task and installs it (restoring afterwards) around execution,
/// so tasks carry their submitter's ambient context onto worker threads.
class Snapshot {
 public:
  /// Snapshot of the calling thread's slots.
  [[nodiscard]] static Snapshot capture() noexcept {
    Snapshot snapshot;
    snapshot.values_ = detail::tls_slots;
    return snapshot;
  }

  /// Replace the calling thread's slots with this snapshot; returns the
  /// displaced state for restoration.
  Snapshot install() const noexcept {
    Snapshot previous;
    previous.values_ = detail::tls_slots;
    detail::tls_slots = values_;
    return previous;
  }

 private:
  std::array<void*, kNumSlots> values_{};
};

/// RAII: install `snapshot` now, restore the displaced state on scope exit.
class ScopedSnapshot {
 public:
  explicit ScopedSnapshot(const Snapshot& snapshot) noexcept
      : previous_(snapshot.install()) {}
  ScopedSnapshot(const ScopedSnapshot&) = delete;
  ScopedSnapshot& operator=(const ScopedSnapshot&) = delete;
  ~ScopedSnapshot() { previous_.install(); }

 private:
  Snapshot previous_;
};

}  // namespace psf::support::ambient
