#include "support/ambient.h"

namespace psf::support::ambient::detail {

// Zero-initialized: every thread starts with no overrides, resolving every
// subsystem to its process-global singleton.
thread_local std::array<void*, kNumSlots> tls_slots{};

}  // namespace psf::support::ambient::detail
