// PSF — Pattern Specification Framework
// Synchronization primitives used by the simulated devices and runtimes:
// a TTAS spin lock (models GPU-style fine-grained locking of reduction-object
// slots), a reusable cyclic barrier (models __syncthreads / per-SM barriers),
// and a one-shot latch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>

#include "support/error.h"

namespace psf::support {

/// Test-and-test-and-set spin lock. Used for short critical sections such as
/// concurrent hash-slot updates, mirroring the paper's "locking (implemented
/// as atomic operations)" for reduction objects.
class SpinLock {
 public:
  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
    }
  }

  bool try_lock() noexcept {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Reusable cyclic barrier for a fixed set of participants. Models both
/// block-level synchronization inside a simulated GPU kernel and the
/// process-level barrier in the mini message-passing layer.
class CyclicBarrier {
 public:
  explicit CyclicBarrier(std::size_t parties) : parties_(parties) {
    PSF_CHECK_MSG(parties > 0, "barrier needs at least one participant");
  }

  CyclicBarrier(const CyclicBarrier&) = delete;
  CyclicBarrier& operator=(const CyclicBarrier&) = delete;

  /// Block until all parties arrive; returns the generation index that just
  /// completed (useful for tests asserting rendezvous rounds).
  std::size_t arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::size_t my_generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return my_generation;
    }
    cv_.wait(lock, [&] { return generation_ != my_generation; });
    return my_generation;
  }

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// One-shot countdown latch.
class Latch {
 public:
  explicit Latch(std::size_t count) : count_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void count_down(std::size_t n = 1) {
    std::lock_guard<std::mutex> guard(mutex_);
    PSF_CHECK_MSG(count_ >= n, "latch count underflow");
    count_ -= n;
    if (count_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  [[nodiscard]] bool try_wait() {
    std::lock_guard<std::mutex> guard(mutex_);
    return count_ == 0;
  }

 private:
  std::size_t count_;
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace psf::support
