#include "support/log.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>

#include "support/ambient.h"

namespace psf::support {

namespace {

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level = [] {
    if (const char* env = std::getenv("PSF_LOG_LEVEL")) {
      return Log::parse_level(env);
    }
    return LogLevel::kWarn;
  }();
  return level;
}

std::atomic<LogFormat>& format_storage() {
  static std::atomic<LogFormat> format = [] {
    if (const char* env = std::getenv("PSF_LOG_FORMAT")) {
      std::string lower;
      for (const char* c = env; *c != '\0'; ++c) {
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(*c))));
      }
      if (lower == "json") return LogFormat::kJson;
    }
    return LogFormat::kText;
  }();
  return format;
}

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

using TestSink = void (*)(LogLevel, const std::string&);

TestSink& test_sink() {
  static TestSink sink = nullptr;
  return sink;
}

constexpr const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
  }
  return "?";
}

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
  }
  return "unknown";
}

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

void append_json_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

/// Format one line (no trailing newline) in the active format.
std::string format_line(LogLevel level, std::string_view component,
                        std::string_view message) {
  if (format_storage().load(std::memory_order_relaxed) == LogFormat::kText) {
    std::string line = "[psf:";
    line += level_tag(level);
    line += "] ";
    line.append(component);
    line += ": ";
    line.append(message);
    return line;
  }
  const double ts_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - process_start())
          .count();
  char ts_buffer[48];
  std::snprintf(ts_buffer, sizeof(ts_buffer), "%.3f", ts_ms);
  std::string line = "{\"ts_ms\":";
  line += ts_buffer;
  line += ",\"level\":\"";
  line += level_name(level);
  line += "\",\"component\":\"";
  append_json_escaped(line, component);
  line += "\"";
  // Ambient job id: non-zero only under a serve JobScope (or a snapshot
  // propagated from one onto an executor worker).
  if (const std::uint64_t job = ambient::current_job_id(); job != 0) {
    char job_buffer[32];
    std::snprintf(job_buffer, sizeof(job_buffer), "%llu",
                  static_cast<unsigned long long>(job));
    line += ",\"job\":";
    line += job_buffer;
  }
  line += ",\"msg\":\"";
  append_json_escaped(line, message);
  line += "\"}";
  return line;
}

/// Already holding the sink mutex: hand the formatted line to the test
/// sink or stderr.
void emit_line(LogLevel level, std::string_view component,
               std::string_view message) {
  const std::string line = format_line(level, component, message);
  if (test_sink() != nullptr) {
    test_sink()(level, line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

// --- duplicate rate limiting -------------------------------------------------

struct RateConfig {
  double burst = 8.0;        ///< identical lines passing before suppression
  double per_second = 2.0;   ///< refill rate once the burst is spent
};

RateConfig& rate_config() {
  static RateConfig config;
  return config;
}

/// Token bucket + duplicate tracker for one (level, component) key.
struct RateState {
  double tokens = 0.0;
  bool initialized = false;
  std::chrono::steady_clock::time_point last_refill;
  std::string last_message;
  std::uint64_t suppressed = 0;
};

std::map<std::pair<int, std::string>, RateState>& rate_states() {
  static auto* states =
      new std::map<std::pair<int, std::string>, RateState>();
  return *states;
}

/// Emit the pending "suppressed N duplicates" summary for `state`, if any.
void flush_suppressed(LogLevel level, std::string_view component,
                      RateState& state) {
  if (state.suppressed == 0) return;
  std::string summary = "suppressed " + std::to_string(state.suppressed) +
                        " duplicate" + (state.suppressed == 1 ? "" : "s") +
                        " of: " + state.last_message;
  state.suppressed = 0;
  emit_line(level, component, summary);
}

}  // namespace

LogLevel Log::level() noexcept {
  return level_storage().load(std::memory_order_relaxed);
}

void Log::set_level(LogLevel level) noexcept {
  level_storage().store(level, std::memory_order_relaxed);
}

LogLevel Log::parse_level(std::string_view text) noexcept {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "error") return LogLevel::kError;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "trace") return LogLevel::kTrace;
  return LogLevel::kWarn;
}

LogFormat Log::format() noexcept {
  return format_storage().load(std::memory_order_relaxed);
}

void Log::set_format(LogFormat format) noexcept {
  format_storage().store(format, std::memory_order_relaxed);
}

void Log::set_rate_limit(double burst, double per_second) noexcept {
  std::lock_guard<std::mutex> guard(sink_mutex());
  rate_config().burst = burst;
  rate_config().per_second = per_second < 0.0 ? 0.0 : per_second;
  rate_states().clear();
}

void Log::set_sink_for_testing(void (*sink)(LogLevel, const std::string&)) {
  std::lock_guard<std::mutex> guard(sink_mutex());
  test_sink() = sink;
}

void Log::write(LogLevel level, std::string_view component,
                std::string_view message) {
  std::lock_guard<std::mutex> guard(sink_mutex());

  // Duplicate suppression guards the levels that repeat under failure
  // storms (a lost device warns once per retry, a flaky link per message);
  // info and below are already opt-in via the level threshold.
  const RateConfig config = rate_config();
  if (config.burst > 0.0 &&
      (level == LogLevel::kError || level == LogLevel::kWarn)) {
    auto& state = rate_states()[{static_cast<int>(level),
                                 std::string(component)}];
    const auto now = std::chrono::steady_clock::now();
    if (!state.initialized) {
      state.initialized = true;
      state.tokens = config.burst;
      state.last_refill = now;
    } else {
      const double elapsed =
          std::chrono::duration<double>(now - state.last_refill).count();
      state.tokens = std::min(config.burst,
                              state.tokens + elapsed * config.per_second);
      state.last_refill = now;
    }
    if (message != state.last_message) {
      // A distinct line always passes; settle the previous run first so
      // the summary lands next to its duplicates.
      flush_suppressed(level, component, state);
      state.last_message = std::string(message);
      if (state.tokens >= 1.0) state.tokens -= 1.0;
      emit_line(level, component, message);
      return;
    }
    if (state.tokens < 1.0) {
      ++state.suppressed;
      return;
    }
    state.tokens -= 1.0;
    flush_suppressed(level, component, state);
    emit_line(level, component, message);
    return;
  }

  emit_line(level, component, message);
}

}  // namespace psf::support
