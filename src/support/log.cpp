#include "support/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace psf::support {

namespace {

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level = [] {
    if (const char* env = std::getenv("PSF_LOG_LEVEL")) {
      return Log::parse_level(env);
    }
    return LogLevel::kWarn;
  }();
  return level;
}

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

constexpr const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
  }
  return "?";
}

}  // namespace

LogLevel Log::level() noexcept {
  return level_storage().load(std::memory_order_relaxed);
}

void Log::set_level(LogLevel level) noexcept {
  level_storage().store(level, std::memory_order_relaxed);
}

LogLevel Log::parse_level(std::string_view text) noexcept {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "error") return LogLevel::kError;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "trace") return LogLevel::kTrace;
  return LogLevel::kWarn;
}

void Log::write(LogLevel level, std::string_view component,
                std::string_view message) {
  std::lock_guard<std::mutex> guard(sink_mutex());
  std::fprintf(stderr, "[psf:%s] %.*s: %.*s\n", level_tag(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace psf::support
