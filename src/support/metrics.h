// PSF — Pattern Specification Framework
// psf::metrics — low-overhead runtime observability (the substrate behind
// the paper's evaluation: Figs. 5-8 and Table II all report *where time
// goes*). Every layer records into a process-wide Registry:
//
//   * Counter — monotonically increasing integer (messages sent, chunks
//     grabbed, steals). Relaxed atomic increment; ~1 ns on the hot path.
//   * Gauge — last-written double with a monotonic `merge_max` variant
//     (makespans, adaptive split ratios, overlap efficiency).
//   * Timer — accumulated duration + sample count. Virtual-time code calls
//     `observe(seconds)`; wall-clock sections use the RAII ScopedTimer.
//   * Histogram — log-bucketed value distribution (queue-wait/run latency
//     in ms, message/buffer sizes in bytes) with mergeable bucket counts
//     and bounded-error quantiles (p50/p99 within 6.25%; max exact).
//
// Naming convention: dotted hierarchy, subsystem first
// ("minimpi.bytes_sent", "pattern.gr.units.gpu1"). Timers carrying VIRTUAL
// seconds end in `_vtime`; timers carrying WALL seconds end in `_wall`.
// Everything except `exec.*` and `*_wall` is deterministic for a fixed
// workload — identical under any PSF_THREADS value (see docs/EXECUTOR.md).
//
// Multi-tenancy: instruments resolve against Registry::current() — the
// thread's scoped registry (installed by ScopedRegistry / serve::JobScope,
// propagated across executor task submission) or, absent any override, the
// process-global Registry::global(). A single-job process never installs an
// override, so its reports are byte-identical to the pre-serve behaviour.
// See docs/SERVING.md for the per-job isolation contract.
//
// A run dumps a versioned JSON report when either the `PSF_METRICS`
// environment variable names a file (written at process exit) or
// `EnvOptions::with_metrics_path` is set (written by RuntimeEnv::finalize).
// Schema: docs/OBSERVABILITY.md; validated by scripts/validate_metrics.py.
//
// Compile-out: building with -DPSF_DISABLE_METRICS turns the PSF_METRIC_*
// macros into no-ops so instrumented hot paths carry zero code. The
// registry itself stays available (tests and reports still link).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/ambient.h"

namespace psf::metrics {

/// Monotonic event counter. Thread-safe; increments are relaxed (the value
/// is read only after the threads that wrote it joined or at reporting
/// time, where exactness across a race is not meaningful).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins double, with a monotonic-max merge for quantities like
/// makespans where concurrent writers each report their own lane.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void merge_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulated duration with a sample count. `observe` takes seconds of
/// either clock domain; keep domains apart by the naming convention above.
class Timer {
 public:
  void observe(double seconds) noexcept {
    seconds_.fetch_add(seconds, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] double seconds() const noexcept {
    return seconds_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    seconds_.store(0.0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> seconds_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

/// Log-bucketed value distribution (latencies in ms, payload sizes in
/// bytes). Thread-safe lock-free recording: one relaxed bucket increment
/// plus count/sum/min/max updates per sample. Buckets subdivide each power
/// of two into kSubBuckets log-spaced slices, so any quantile read from the
/// bucket counts is exact in rank and carries at most 1/kSubBuckets
/// (6.25%) relative value error — except max, which is tracked exactly.
/// Histograms with the same geometry merge associatively (bucket-count
/// addition), so per-worker or per-rank instances can be combined without
/// keeping raw samples.
class Histogram {
 public:
  /// Slices per power of two; relative bucket width = 1/kSubBuckets.
  static constexpr int kSubBuckets = 16;
  /// Covered magnitude range: [2^kMinExp, 2^kMaxExp) ~ [9e-13, 1.1e12].
  /// Values outside (and zero/negatives) land in the underflow/overflow
  /// buckets, still counted exactly.
  static constexpr int kMinExp = -40;
  static constexpr int kMaxExp = 40;
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  void record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Smallest / largest recorded value (exact); 0 when empty.
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  /// Nearest-rank quantile from the bucket counts: the bucket upper bound
  /// holding the q-ranked sample, clamped to the exact max (so
  /// quantile(1.0) == max()). Within 1/kSubBuckets relative error of the
  /// exact sample. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Add `other`'s samples into this histogram. Associative and
  /// commutative up to floating-point sum ordering; bucket counts, count,
  /// min and max merge exactly.
  void merge_from(const Histogram& other) noexcept;

  /// Zero every bucket and the count/sum/min/max. Not atomic with respect
  /// to concurrent record() calls — callers quiesce writers first (the
  /// same contract as Registry::reset_values).
  void reset() noexcept;

  /// Bucket geometry (static, shared by every instance).
  [[nodiscard]] static std::size_t bucket_index(double value) noexcept;
  [[nodiscard]] static double bucket_upper(std::size_t index) noexcept;

  /// Point-in-time copy: totals plus the non-empty buckets as
  /// (upper_bound, count) pairs in increasing bound order.
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<std::pair<double, std::uint64_t>> buckets;

    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    /// Same semantics as Histogram::quantile, evaluated on the copy.
    [[nodiscard]] double quantile(double q) const;
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/// RAII wall-clock span feeding a Timer. Scopes nest freely — each scope
/// reports to its own timer, so an outer span includes its inner spans.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(&timer), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stop(); }

  /// Record now; further stop() calls are no-ops (idempotent early stop).
  void stop() noexcept {
    if (timer_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_->observe(std::chrono::duration<double>(elapsed).count());
    timer_ = nullptr;
  }

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Thread-safe name -> instrument registry. Lookup interns the name under a
/// mutex and returns a reference that stays valid for the registry's
/// lifetime; hot call sites cache it in a function-local static so the
/// steady-state cost is one relaxed atomic op. reset_values() zeroes every
/// instrument but never invalidates references.
class Registry {
 public:
  Registry();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Process-unique, never-reused id (1-based). The PSF_METRIC_* macros key
  /// their per-thread instrument caches on it, so a cache entry resolved
  /// against one registry can never serve another — not even a new registry
  /// allocated at a recycled address.
  [[nodiscard]] std::uint64_t uid() const noexcept { return uid_; }

  /// Zero every instrument, keeping all registrations (and references).
  void reset_values();

  /// Point-in-time copies, for tests and report assembly.
  [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;
  [[nodiscard]] std::map<std::string, double> gauges() const;
  struct TimerSample {
    std::uint64_t count = 0;
    double seconds = 0.0;
  };
  [[nodiscard]] std::map<std::string, TimerSample> timers() const;
  [[nodiscard]] std::map<std::string, Histogram::Snapshot> histograms() const;

  /// Versioned JSON report; deterministic (names sorted, fixed number
  /// formatting). Schema documented in docs/OBSERVABILITY.md.
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`. Serialized process-wide so concurrent
  /// finalizers never interleave writes. Returns false on I/O failure.
  bool write_json(const std::string& path) const;

  /// The process-wide registry every PSF subsystem reports into by
  /// default. First use arms an atexit hook that dumps to $PSF_METRICS
  /// when set.
  static Registry& global();

  /// The registry instrumentation resolves against on the calling thread:
  /// the scoped override installed by ScopedRegistry (directly or through
  /// serve::JobScope), or global() when none is installed.
  [[nodiscard]] static Registry& current() noexcept {
    void* scoped =
        support::ambient::get(support::ambient::Slot::kMetricsRegistry);
    return scoped != nullptr ? *static_cast<Registry*>(scoped) : global();
  }

 private:
  const std::uint64_t uid_;
  mutable std::mutex mutex_;
  // Node-based maps: values never move, so returned references are stable.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// RAII: route the calling thread's instrumentation into `registry` (a
/// per-job registry, a test scratch registry) instead of the global one.
/// Scopes nest; destruction restores the previous override. Pass nullptr
/// to restore global resolution inside an outer scope. The registry must
/// outlive the scope AND any executor tasks submitted under it (tasks
/// capture the override at submission; see support/ambient.h).
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry* registry) noexcept
      : previous_(support::ambient::swap(
            support::ambient::Slot::kMetricsRegistry, registry)) {}
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;
  ~ScopedRegistry() {
    support::ambient::swap(support::ambient::Slot::kMetricsRegistry,
                           previous_);
  }

 private:
  void* previous_;
};

/// One histogram snapshot as a JSON object: {"count":..,"sum":..,"min":..,
/// "max":..,"p50":..,"p90":..,"p99":..,"buckets":[[upper,count],...]}.
/// Deterministic formatting; non-finite bounds clamp to the largest finite
/// double (JSON has no infinity). Shared by Registry::to_json and the
/// telemetry snapshot streamer.
[[nodiscard]] std::string histogram_snapshot_json(
    const Histogram::Snapshot& snap);

/// Structural JSON validity check (objects, arrays, strings, numbers,
/// literals — no extensions). Used by tests and the bench driver to
/// self-check emitted reports without an external parser.
[[nodiscard]] bool validate_json(std::string_view text);

}  // namespace psf::metrics

// --- hot-path macros ---------------------------------------------------------
// Each expands to a thread-local instrument cache keyed on the current
// registry's uid + one relaxed atomic op, or to nothing under
// -DPSF_DISABLE_METRICS. The name must be a string literal (or otherwise
// stable for the life of the call site). The cache re-resolves only when
// the thread's current registry changes (a job switch on a shared worker);
// the steady-state cost within one job stays a TLS compare + atomic op.
#ifndef PSF_DISABLE_METRICS
#define PSF_METRIC_ADD(name, n)                                         \
  do {                                                                  \
    static thread_local std::uint64_t psf_metric_uid_ = 0;              \
    static thread_local ::psf::metrics::Counter* psf_metric_counter_ =  \
        nullptr;                                                        \
    ::psf::metrics::Registry& psf_metric_registry_ =                    \
        ::psf::metrics::Registry::current();                            \
    if (psf_metric_uid_ != psf_metric_registry_.uid()) {                \
      psf_metric_counter_ = &psf_metric_registry_.counter(name);        \
      psf_metric_uid_ = psf_metric_registry_.uid();                     \
    }                                                                   \
    psf_metric_counter_->add(n);                                        \
  } while (0)
#define PSF_METRIC_GAUGE_SET(name, v)                                   \
  do {                                                                  \
    static thread_local std::uint64_t psf_metric_uid_ = 0;              \
    static thread_local ::psf::metrics::Gauge* psf_metric_gauge_ =      \
        nullptr;                                                        \
    ::psf::metrics::Registry& psf_metric_registry_ =                    \
        ::psf::metrics::Registry::current();                            \
    if (psf_metric_uid_ != psf_metric_registry_.uid()) {                \
      psf_metric_gauge_ = &psf_metric_registry_.gauge(name);            \
      psf_metric_uid_ = psf_metric_registry_.uid();                     \
    }                                                                   \
    psf_metric_gauge_->set(v);                                          \
  } while (0)
#define PSF_METRIC_GAUGE_MAX(name, v)                                   \
  do {                                                                  \
    static thread_local std::uint64_t psf_metric_uid_ = 0;              \
    static thread_local ::psf::metrics::Gauge* psf_metric_gauge_ =      \
        nullptr;                                                        \
    ::psf::metrics::Registry& psf_metric_registry_ =                    \
        ::psf::metrics::Registry::current();                            \
    if (psf_metric_uid_ != psf_metric_registry_.uid()) {                \
      psf_metric_gauge_ = &psf_metric_registry_.gauge(name);            \
      psf_metric_uid_ = psf_metric_registry_.uid();                     \
    }                                                                   \
    psf_metric_gauge_->merge_max(v);                                    \
  } while (0)
#define PSF_METRIC_OBSERVE(name, seconds)                               \
  do {                                                                  \
    static thread_local std::uint64_t psf_metric_uid_ = 0;              \
    static thread_local ::psf::metrics::Timer* psf_metric_timer_ =      \
        nullptr;                                                        \
    ::psf::metrics::Registry& psf_metric_registry_ =                    \
        ::psf::metrics::Registry::current();                            \
    if (psf_metric_uid_ != psf_metric_registry_.uid()) {                \
      psf_metric_timer_ = &psf_metric_registry_.timer(name);            \
      psf_metric_uid_ = psf_metric_registry_.uid();                     \
    }                                                                   \
    psf_metric_timer_->observe(seconds);                                \
  } while (0)
#define PSF_METRIC_HIST_RECORD(name, value)                              \
  do {                                                                   \
    static thread_local std::uint64_t psf_metric_uid_ = 0;               \
    static thread_local ::psf::metrics::Histogram* psf_metric_hist_ =    \
        nullptr;                                                         \
    ::psf::metrics::Registry& psf_metric_registry_ =                     \
        ::psf::metrics::Registry::current();                             \
    if (psf_metric_uid_ != psf_metric_registry_.uid()) {                 \
      psf_metric_hist_ = &psf_metric_registry_.histogram(name);          \
      psf_metric_uid_ = psf_metric_registry_.uid();                      \
    }                                                                    \
    psf_metric_hist_->record(static_cast<double>(value));                \
  } while (0)
// Process-global variant: bypasses Registry::current() and records into
// Registry::global() unconditionally. For instrumentation that may execute
// AFTER the surrounding work's completion signal (e.g. a parallel_for
// participant retiring after another participant finished the last index),
// where an ambient per-job registry could already be destroyed. The global
// registry is immortal, so a plain function-local static cache is safe.
#define PSF_METRIC_GLOBAL_ADD(name, n)                                  \
  do {                                                                  \
    static ::psf::metrics::Counter& psf_metric_counter_ =               \
        ::psf::metrics::Registry::global().counter(name);               \
    psf_metric_counter_.add(n);                                         \
  } while (0)
#else
#define PSF_METRIC_ADD(name, n) \
  do {                          \
  } while (0)
#define PSF_METRIC_GAUGE_SET(name, v) \
  do {                                \
  } while (0)
#define PSF_METRIC_GAUGE_MAX(name, v) \
  do {                                \
  } while (0)
#define PSF_METRIC_OBSERVE(name, seconds) \
  do {                                    \
  } while (0)
#define PSF_METRIC_HIST_RECORD(name, value) \
  do {                                      \
  } while (0)
#define PSF_METRIC_GLOBAL_ADD(name, n) \
  do {                                 \
  } while (0)
#endif
