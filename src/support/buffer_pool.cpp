#include "support/buffer_pool.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>

#include "support/metrics.h"

namespace psf::support {

std::size_t BufferPool::class_index(std::size_t bytes) noexcept {
  if (bytes <= kMinClassBytes) return 0;
  if (bytes > kMaxClassBytes) return kNumClasses;
  const std::size_t rounded = std::bit_ceil(bytes);
  return static_cast<std::size_t>(std::countr_zero(rounded)) -
         static_cast<std::size_t>(std::countr_zero(kMinClassBytes));
}

PooledBuffer BufferPool::acquire(std::size_t bytes) {
  if (bytes == 0) return PooledBuffer();
  PSF_METRIC_HIST_RECORD("support.pool.acquire_bytes", bytes);

  const std::size_t index = class_index(bytes);
  if (index < kNumClasses) {
    FreeList& list = classes_[index];
    {
      std::lock_guard<std::mutex> lock(list.mutex);
      if (!list.buffers.empty()) {
        AlignedBuffer storage = std::move(list.buffers.back());
        list.buffers.pop_back();
        hits_.fetch_add(1, std::memory_order_relaxed);
        bytes_reused_.fetch_add(bytes, std::memory_order_relaxed);
        outstanding_.fetch_add(1, std::memory_order_relaxed);
        PSF_METRIC_ADD("support.pool.hits", 1);
        PSF_METRIC_ADD("support.pool.bytes_reused", bytes);
        return PooledBuffer(this, std::move(storage), bytes, /*fresh=*/false);
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    PSF_METRIC_ADD("support.pool.misses", 1);
    if (std::getenv("PSF_POOL_DEBUG") != nullptr) {
      std::fprintf(stderr, "pool miss: %zu bytes (class %zu)\n", bytes,
                   class_bytes(index));
    }
    return PooledBuffer(this, AlignedBuffer(class_bytes(index)), bytes,
                        /*fresh=*/true);
  }

  if (const char* dbg = std::getenv("PSF_POOL_DEBUG"); dbg != nullptr) {
    std::fprintf(stderr, "pool miss (oversize): %zu bytes\n", bytes);
  }
  // Oversize: allocate exactly, never cache (release_storage frees it
  // because class_index(capacity) == kNumClasses).
  misses_.fetch_add(1, std::memory_order_relaxed);
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  PSF_METRIC_ADD("support.pool.misses", 1);
  return PooledBuffer(this, AlignedBuffer(bytes), bytes, /*fresh=*/true);
}

void BufferPool::release_storage(AlignedBuffer storage) noexcept {
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  if (storage.size() == 0) return;
  const std::size_t index = class_index(storage.size());
  // Cache only exact class-sized storage; oversize allocations fall through
  // and free here.
  if (index < kNumClasses && storage.size() == class_bytes(index)) {
    FreeList& list = classes_[index];
    std::lock_guard<std::mutex> lock(list.mutex);
    if (list.buffers.size() < kMaxCachedPerClass) {
      list.buffers.push_back(std::move(storage));
      return;
    }
  }
}

void BufferPool::prewarm(std::size_t multiplier, std::size_t extra) {
  for (std::size_t index = 0; index < kNumClasses; ++index) {
    FreeList& list = classes_[index];
    std::lock_guard<std::mutex> lock(list.mutex);
    const std::size_t cached = list.buffers.size();
    if (cached == 0) continue;
    const std::size_t target =
        std::min(kMaxCachedPerClass, cached * multiplier + extra);
    while (list.buffers.size() < target) {
      list.buffers.emplace_back(class_bytes(index));
    }
  }
}

void BufferPool::trim() {
  for (FreeList& list : classes_) {
    std::vector<AlignedBuffer> drained;
    {
      std::lock_guard<std::mutex> lock(list.mutex);
      drained.swap(list.buffers);
    }
    // Freed outside the lock.
  }
}

std::uint64_t BufferPool::cached_bytes() const {
  std::uint64_t total = 0;
  for (const FreeList& list : classes_) {
    std::lock_guard<std::mutex> lock(
        const_cast<std::mutex&>(list.mutex));
    for (const AlignedBuffer& buffer : list.buffers) {
      total += buffer.size();
    }
  }
  return total;
}

BufferPool& BufferPool::global() {
  static BufferPool pool;
  return pool;
}

}  // namespace psf::support
