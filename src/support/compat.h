// PSF — Pattern Specification Framework
// API deprecation shims.
//
// The raw C-style registration entry points (set_emit_func & friends) are
// the paper's historical surface; new code goes through the typed facades in
// pattern/typed.h and the composition layer in pattern/compose.h. Marking
// the raw setters deprecated steers users there while paper-parity targets
// (src/apps, the listing-style examples, the test suite) opt out with a
// target-level PSF_ALLOW_DEPRECATED definition, keeping -Werror builds
// clean.
#pragma once

// Marks a raw registration entry point as deprecated in favor of the typed
// API. Expands to nothing on targets that define PSF_ALLOW_DEPRECATED
// (paper-parity code that intentionally uses the C-style surface).
#if defined(PSF_ALLOW_DEPRECATED)
#define PSF_DEPRECATED(msg)
#else
#define PSF_DEPRECATED(msg) [[deprecated(msg)]]
#endif

// Suppression block for the framework's own lowering shims: the typed
// facades are the sanctioned callers of the raw setters, so their call
// sites wrap the call in PSF_SUPPRESS_DEPRECATED_BEGIN/END instead of
// defining PSF_ALLOW_DEPRECATED for every downstream target that merely
// includes pattern/typed.h. GCC and Clang both honor the GCC pragma
// spelling.
#define PSF_SUPPRESS_DEPRECATED_BEGIN \
  _Pragma("GCC diagnostic push")      \
  _Pragma("GCC diagnostic ignored \"-Wdeprecated-declarations\"")
#define PSF_SUPPRESS_DEPRECATED_END _Pragma("GCC diagnostic pop")
