#include "minimpi/cart.h"

#include <algorithm>

namespace psf::minimpi {

CartComm::CartComm(Communicator& comm, std::vector<int> dims,
                   std::vector<bool> periodic)
    : comm_(&comm), dims_(std::move(dims)), periodic_(std::move(periodic)) {
  PSF_CHECK_MSG(!dims_.empty() && dims_.size() <= 3,
                "CartComm supports 1-3 dimensions");
  PSF_CHECK_MSG(periodic_.size() == dims_.size(),
                "periodic flags must match dims");
  long long product = 1;
  for (int d : dims_) {
    PSF_CHECK_MSG(d > 0, "dimension extents must be positive");
    product *= d;
  }
  PSF_CHECK_MSG(product == comm.size(),
                "dims product " << product << " != world size "
                                << comm.size());
  coords_ = rank_to_coords(comm.rank());
}

std::vector<int> CartComm::choose_dims(int size, int ndims) {
  PSF_CHECK(size > 0 && ndims >= 1 && ndims <= 3);
  std::vector<int> dims(static_cast<std::size_t>(ndims), 1);
  // Greedily peel prime factors (largest first) onto the smallest dimension.
  std::vector<int> factors;
  int n = size;
  for (int p = 2; p * p <= n; ++p) {
    while (n % p == 0) {
      factors.push_back(p);
      n /= p;
    }
  }
  if (n > 1) factors.push_back(n);
  std::sort(factors.rbegin(), factors.rend());
  for (int f : factors) {
    auto smallest = std::min_element(dims.begin(), dims.end());
    *smallest *= f;
  }
  std::sort(dims.rbegin(), dims.rend());
  return dims;
}

std::vector<int> CartComm::rank_to_coords(int rank) const {
  PSF_CHECK(rank >= 0 && rank < comm_->size());
  std::vector<int> coords(dims_.size());
  int remainder = rank;
  for (std::size_t d = dims_.size(); d-- > 0;) {
    coords[d] = remainder % dims_[d];
    remainder /= dims_[d];
  }
  return coords;
}

int CartComm::coords_to_rank(const std::vector<int>& coords) const {
  PSF_CHECK(coords.size() == dims_.size());
  int rank = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    PSF_CHECK_MSG(coords[d] >= 0 && coords[d] < dims_[d],
                  "coordinate " << coords[d] << " out of range for dim " << d);
    rank = rank * dims_[d] + coords[d];
  }
  return rank;
}

int CartComm::neighbor(int dim, int disp) const {
  PSF_CHECK(dim >= 0 && dim < ndims());
  PSF_CHECK_MSG(disp == 1 || disp == -1, "neighbor displacement must be ±1");
  std::vector<int> coords = coords_;
  int c = coords[static_cast<std::size_t>(dim)] + disp;
  const int extent = dims_[static_cast<std::size_t>(dim)];
  if (c < 0 || c >= extent) {
    if (!periodic_[static_cast<std::size_t>(dim)]) return kNoNeighbor;
    c = (c + extent) % extent;
  }
  coords[static_cast<std::size_t>(dim)] = c;
  return coords_to_rank(coords);
}

}  // namespace psf::minimpi
