// PSF — Pattern Specification Framework
// World and Communicator: the rank-parallel execution environment and its
// message-passing interface. Mirrors the MPI subset the paper's framework
// uses: blocking and non-blocking point-to-point, barrier, broadcast,
// binomial-tree reductions, gather and personalized all-to-all.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "fault/fault.h"
#include "minimpi/message.h"
#include "support/error.h"
#include "timemodel/link.h"
#include "timemodel/rates.h"
#include "timemodel/timeline.h"
#include "timemodel/trace.h"

namespace psf::minimpi {

class Communicator;

/// How sender-side small-message coalescing prices the batched frame.
///
/// kPerSub keeps virtual times BIT-IDENTICAL to uncoalesced sends: every
/// appended sub-message is priced exactly like an individual send (one
/// mpi_call_s advance, its own network cost from the append-time clock);
/// only the functional transport batches. kAggregate prices the frame as
/// one wire message at flush time — one mpi_call_s for the whole frame,
/// one alpha-beta network cost over the aggregate bytes shared by every
/// sub — which is the paper-faithful "aggregate the tiny per-neighbor
/// messages" optimization and strictly cheaper whenever a batch holds
/// more than one message.
enum class CoalesceMode { kOff, kPerSub, kAggregate };

/// A cluster of `size` ranks living in one process. `run` launches one
/// thread per rank executing `rank_main(comm)` SPMD-style, and joins them.
/// Virtual time: every rank has a Timeline; the network LinkModel prices
/// messages; collectives use real message trees so their virtual cost is
/// emergent.
class World {
 public:
  explicit World(int size,
                 timemodel::LinkModel network = timemodel::LinkModel::free(),
                 timemodel::Overheads overheads = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;
  /// Movable so factory helpers can return a configured World. Only move a
  /// World with no ranks running. (Defined out of line: BarrierState is
  /// incomplete here.)
  World(World&&) noexcept;

  [[nodiscard]] int size() const noexcept { return size_; }

  /// Run `rank_main` on every rank. Rethrows the first rank exception after
  /// all threads have been joined. May be called repeatedly (timelines are
  /// NOT reset automatically; call reset_timelines() between experiments).
  void run(const std::function<void(Communicator&)>& rank_main);

  /// Status-returning adapter around run() for callers on the Status side
  /// of the error contract (see support/error.h): a rank exception becomes
  /// ErrorCode::kInternal carrying the exception message instead of
  /// propagating. All ranks are still joined before it returns.
  [[nodiscard]] support::Status try_run(
      const std::function<void(Communicator&)>& rank_main);

  /// Virtual time of a rank (after run() returns).
  [[nodiscard]] double rank_vtime(int rank) const;
  /// Max virtual time over all ranks — the experiment's makespan.
  [[nodiscard]] double makespan() const;
  void reset_timelines();

  [[nodiscard]] const timemodel::LinkModel& network() const noexcept {
    return network_;
  }
  [[nodiscard]] const timemodel::Overheads& overheads() const noexcept {
    return overheads_;
  }

  /// Multiplier applied to message sizes when pricing network transfers,
  /// so scaled-down functional payloads are charged at the paper-scale
  /// workload size (see DESIGN.md §2). Functional delivery is unaffected.
  void set_byte_scale(double scale) noexcept { byte_scale_ = scale; }
  [[nodiscard]] double byte_scale() const noexcept { return byte_scale_; }

  /// Enable sender-side small-message coalescing: payloads of at most
  /// `threshold_bytes` batch per destination into one pooled frame
  /// (capacity `max_frame_bytes`) instead of depositing individually, and
  /// flush at the natural boundaries — before any potentially-blocking
  /// receive/probe/wait/barrier, before a super-threshold send to the same
  /// destination (MPI non-overtaking), when the frame fills, and at the end
  /// of the rank main function. See CoalesceMode for pricing. Call before
  /// run(); the `PSF_COALESCE` environment variable ("subs" / "aggregate" /
  /// "off") is the no-code-change equivalent. Default off: transports with
  /// per-message expectations (fault-injection unit tests) see the exact
  /// pre-coalescing behavior.
  void set_coalescing(CoalesceMode mode, std::size_t threshold_bytes = 4096,
                      std::size_t max_frame_bytes = 65536);
  [[nodiscard]] CoalesceMode coalesce_mode() const noexcept {
    return coalesce_mode_;
  }

  /// Install message-fault injection (drop/corrupt/duplicate/delay, see
  /// fault::MsgFaultSpec) on every send in this World. Thread-safe and
  /// idempotent — the first call wins; rank threads may race to install the
  /// same spec during SPMD setup (RuntimeEnv does exactly that). Faults are
  /// drawn from per-rank seeded streams, so injection is deterministic.
  void set_msg_faults(const fault::MsgFaultSpec& spec);
  [[nodiscard]] bool msg_faults_enabled() const noexcept;

  /// Attach a schedule recorder: every send/recv/barrier records a span on
  /// the per-rank network lane (timemodel::kNetLane) and deliveries record
  /// send -> recv dependency edges, giving psf::analysis the causal message
  /// graph. Call before run(); not owned, must outlive the World. The
  /// recorder also gets "rankN" process names and a "net" lane name per
  /// rank so trace viewers label the lanes.
  void set_trace(timemodel::TraceRecorder* trace);
  [[nodiscard]] timemodel::TraceRecorder* trace() const noexcept {
    return trace_;
  }

 private:
  friend class Communicator;

  struct BarrierState;
  struct MsgFaultState;
  struct CoalesceState;

  [[nodiscard]] MsgFaultState* msg_fault_state() const noexcept;
  /// The sending rank's coalescing slot, or nullptr when coalescing is off.
  /// Each slot is touched only by its own rank's thread — no locking.
  [[nodiscard]] CoalesceState* coalesce_slot(int rank) const noexcept;

  int size_;
  timemodel::LinkModel network_;
  timemodel::Overheads overheads_;
  double byte_scale_ = 1.0;
  timemodel::TraceRecorder* trace_ = nullptr;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<timemodel::Timeline>> timelines_;
  std::unique_ptr<BarrierState> barrier_;
  /// Installed-once fault state; behind a heap holder so World stays
  /// movable (atomics are not). Owned: deleted in ~World.
  std::unique_ptr<std::atomic<MsgFaultState*>> msg_faults_;
  CoalesceMode coalesce_mode_ = CoalesceMode::kOff;
  std::size_t coalesce_threshold_ = 4096;
  std::size_t coalesce_max_frame_ = 65536;
  /// One per-destination batch table per rank (empty when coalescing is
  /// off); slot r is private to rank r's thread.
  std::vector<std::unique_ptr<CoalesceState>> coalesce_;
};

/// Handle for a pending non-blocking operation. Obtained from isend/irecv,
/// completed by Communicator::wait / wait_all.
class Request {
 public:
  Request() = default;

  [[nodiscard]] bool valid() const noexcept { return kind_ != Kind::kNone; }
  [[nodiscard]] const MessageInfo& info() const noexcept { return info_; }

 private:
  friend class Communicator;
  enum class Kind { kNone, kSendDone, kRecvPending };

  Kind kind_ = Kind::kNone;
  int source_ = kAnySource;
  int tag_ = kAnyTag;
  std::span<std::byte> out_;
  MessageInfo info_;
};

/// Per-rank communication endpoint, passed to the rank main function.
class Communicator {
 public:
  Communicator(World& world, int rank) : world_(&world), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return world_->size_; }
  [[nodiscard]] timemodel::Timeline& timeline() noexcept {
    return *world_->timelines_[static_cast<std::size_t>(rank_)];
  }
  [[nodiscard]] World& world() noexcept { return *world_; }

  // --- point-to-point -----------------------------------------------------

  /// Blocking buffered send. Copies `data` once, into a pooled payload.
  void send(int dest, int tag, std::span<const std::byte> data);

  /// Pooled storage for a zero-copy send: pack directly into the returned
  /// buffer and hand it to send_pooled/isend_pooled. The steady state
  /// recycles released payloads, so this allocates only while the pool
  /// warms up.
  [[nodiscard]] support::PooledBuffer acquire_buffer(std::size_t bytes);

  /// Zero-copy blocking send: the pooled payload travels to the receiver
  /// as-is, no intermediate copy.
  void send_pooled(int dest, int tag, support::PooledBuffer payload);

  /// Blocking receive into `out`; the payload must fit. Returns metadata.
  /// Copies the matched payload into `out` exactly once (the matched
  /// delivery itself is zero-copy — use recv_any to keep the pooled
  /// payload and skip even that copy).
  MessageInfo recv(int source, int tag, std::span<std::byte> out);

  /// Alias for recv() emphasizing the copy-once contract.
  MessageInfo recv_into(int source, int tag, std::span<std::byte> out) {
    return recv(source, tag, out);
  }

  /// Blocking receive of a message of unknown size. Zero-copy: the returned
  /// Message owns the pooled payload the sender packed; it returns to the
  /// pool when the Message is destroyed.
  Message recv_any(int source, int tag);

  /// Blocking receive with a wall-clock deadline (a hang detector for
  /// lossy-transport experiments): returns kDeadlineExceeded when no
  /// matching message arrives within `timeout_s` wall seconds. A message
  /// arriving after the deadline stays queued for a later receive. Virtual
  /// time is only advanced on success.
  [[nodiscard]] support::StatusOr<MessageInfo> recv_deadline(
      int source, int tag, std::span<std::byte> out, double timeout_s);

  /// Non-blocking send: buffered, completes immediately (MPI_Ibsend-like —
  /// matches how the paper's runtime posts asynchronous boundary sends).
  Request isend(int dest, int tag, std::span<const std::byte> data);

  /// Zero-copy variant of isend (see send_pooled).
  Request isend_pooled(int dest, int tag, support::PooledBuffer payload);

  /// Non-blocking receive: matching is deferred to wait().
  Request irecv(int source, int tag, std::span<std::byte> out);

  /// Complete a pending request.
  void wait(Request& request);
  void wait_all(std::span<Request> requests);

  /// True if a matching message is already queued.
  [[nodiscard]] bool probe(int source, int tag);

  /// Deposit every batched small message now (no-op when coalescing is
  /// off). Called automatically at the flush boundaries listed on
  /// World::set_coalescing; public so tests and long-running senders can
  /// force a boundary.
  void flush_coalesced();

  // --- typed convenience ----------------------------------------------------

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_span(int dest, int tag, std::span<const T> data) {
    send(dest, tag, std::as_bytes(data));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  MessageInfo recv_span(int source, int tag, std::span<T> out) {
    return recv(source, tag, std::as_writable_bytes(out));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_value(int dest, int tag, const T& value) {
    send_span<T>(dest, tag, std::span<const T>(&value, 1));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T recv_value(int source, int tag) {
    T value{};
    recv_span<T>(source, tag, std::span<T>(&value, 1));
    return value;
  }

  // --- collectives ----------------------------------------------------------

  /// Synchronize all ranks; virtual time advances to the global maximum plus
  /// a log2(size) latency term.
  void barrier();

  /// Broadcast `data` from `root` over a binomial tree.
  void bcast(std::span<std::byte> data, int root);

  /// In-place element-wise reduction of `data` to `root` over a binomial
  /// tree ("parallel binary tree order" per the paper). `op(dst, src)`
  /// combines one element.
  template <typename T, typename Op>
    requires std::is_trivially_copyable_v<T>
  void reduce(std::span<T> data, int root, Op op) {
    reduce_bytes(std::as_writable_bytes(data), sizeof(T), root,
                 [&op](std::byte* dst, const std::byte* src) {
                   op(*reinterpret_cast<T*>(dst),
                      *reinterpret_cast<const T*>(src));
                 });
  }

  /// Reduce-to-all: tree reduce to rank 0 followed by broadcast.
  template <typename T, typename Op>
    requires std::is_trivially_copyable_v<T>
  void allreduce(std::span<T> data, Op op) {
    reduce<T>(data, 0, op);
    bcast(std::as_writable_bytes(data), 0);
  }

  /// Convenience scalar allreduce.
  template <typename T, typename Op>
    requires std::is_trivially_copyable_v<T>
  T allreduce_value(T value, Op op) {
    allreduce(std::span<T>(&value, 1), op);
    return value;
  }

  /// Gather one value per rank to all ranks (small metadata exchanges).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> allgather_value(const T& value);

  /// Personalized all-to-all with per-destination byte buffers. Used by the
  /// irregular-reduction node-data exchange. `outbound[r]` goes to rank r;
  /// returns inbound payloads indexed by source rank.
  std::vector<std::vector<std::byte>> alltoallv(
      const std::vector<std::vector<std::byte>>& outbound, int tag);

  /// Reusing variant: fills `inbound` in place, assigning into whatever
  /// capacity the caller's vectors already hold. Pass the same `inbound`
  /// across iterations for an allocation-free steady state.
  void alltoallv(const std::vector<std::vector<std::byte>>& outbound, int tag,
                 std::vector<std::vector<std::byte>>& inbound);

  /// Type-erased tree reduction (implementation detail of reduce<T>).
  void reduce_bytes(
      std::span<std::byte> data, std::size_t elem_size, int root,
      const std::function<void(std::byte*, const std::byte*)>& combine);

 private:
  Mailbox& mailbox(int rank) {
    return *world_->mailboxes_[static_cast<std::size_t>(rank)];
  }

  void deliver(int dest, int tag, support::PooledBuffer payload);
  void consume(const Message& message);

  /// Append a sub-threshold payload to the destination's frame (coalescing
  /// enabled). Under CoalesceMode::kPerSub the message is priced here,
  /// identically to an individual send.
  void coalesce_append(World::CoalesceState& state, int dest, int tag,
                       support::PooledBuffer payload);
  /// Price (kAggregate), apply the frame-level fault fate and deposit the
  /// destination's batch, if any.
  void coalesce_flush_dest(World::CoalesceState& state, int dest);

  /// retrieve() plus the fault-era receiver protocol: wall-clock deadline
  /// (when the plan arms one), CRC verification, and duplicate purging.
  /// Reduces to a plain retrieve when no faults are installed.
  Message retrieve_checked(int source, int tag);

  /// False if `message` fails its CRC (it is discarded and the caller must
  /// retrieve again); true otherwise, after purging duplicate deliveries.
  bool accept_message(const Message& message);

  World* world_;
  int rank_;
};

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> Communicator::allgather_value(const T& value) {
  std::vector<T> all(static_cast<std::size_t>(size()));
  all[static_cast<std::size_t>(rank())] = value;
  // Ring allgather: size-1 steps, each rank forwards the next slot.
  constexpr int kTag = 0x7fff0001;
  const int n = size();
  for (int step = 0; step < n - 1; ++step) {
    const int send_slot = (rank() - step + n) % n;
    const int recv_slot = (rank() - step - 1 + n) % n;
    const int next = (rank() + 1) % n;
    const int prev = (rank() - 1 + n) % n;
    Request rr = irecv(prev, kTag + step,
                       std::as_writable_bytes(std::span<T>(
                           &all[static_cast<std::size_t>(recv_slot)], 1)));
    send_span<T>(next, kTag + step,
                 std::span<const T>(&all[static_cast<std::size_t>(send_slot)],
                                    1));
    wait(rr);
  }
  return all;
}

}  // namespace psf::minimpi
