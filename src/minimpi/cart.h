// PSF — Pattern Specification Framework
// Cartesian process topology for the stencil runtime: maps ranks onto a
// virtual processor grid (as the paper's stencil runtime expects the user to
// supply), with coordinate/rank conversion and neighbor shifts.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "minimpi/communicator.h"
#include "support/error.h"

namespace psf::minimpi {

/// Rank of a missing neighbor at a non-periodic boundary.
inline constexpr int kNoNeighbor = -2;

/// Up to 3-dimensional Cartesian topology over an existing Communicator.
/// Row-major rank ordering (the last dimension varies fastest).
class CartComm {
 public:
  /// `dims` must multiply to comm.size(). `periodic[d]` wraps dimension d.
  CartComm(Communicator& comm, std::vector<int> dims,
           std::vector<bool> periodic);

  /// Pick a balanced factorization of `size` into `ndims` dimensions, most
  /// populous dimension first (mirrors MPI_Dims_create).
  static std::vector<int> choose_dims(int size, int ndims);

  [[nodiscard]] Communicator& comm() noexcept { return *comm_; }
  [[nodiscard]] int ndims() const noexcept {
    return static_cast<int>(dims_.size());
  }
  [[nodiscard]] const std::vector<int>& dims() const noexcept { return dims_; }

  /// Coordinates of this rank.
  [[nodiscard]] const std::vector<int>& coords() const noexcept {
    return coords_;
  }

  [[nodiscard]] std::vector<int> rank_to_coords(int rank) const;
  [[nodiscard]] int coords_to_rank(const std::vector<int>& coords) const;

  /// Neighbor at displacement `disp` (+1/-1) along `dim`; kNoNeighbor if the
  /// shift falls off a non-periodic edge.
  [[nodiscard]] int neighbor(int dim, int disp) const;

 private:
  Communicator* comm_;
  std::vector<int> dims_;
  std::vector<bool> periodic_;
  std::vector<int> coords_;
};

}  // namespace psf::minimpi
