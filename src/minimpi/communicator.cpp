#include "minimpi/communicator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "support/metrics.h"
#include "support/sync.h"

namespace psf::minimpi {

// Shared state for the virtual-time-aware barrier: a cyclic rendezvous that
// also computes the max timeline across participants.
struct World::BarrierState {
  explicit BarrierState(std::size_t parties) : rendezvous(parties) {}

  support::CyclicBarrier rendezvous;
  std::mutex mutex;
  double max_vtime = 0.0;
};

World::World(int size, timemodel::LinkModel network,
             timemodel::Overheads overheads)
    : size_(size), network_(network), overheads_(overheads) {
  PSF_CHECK_MSG(size > 0, "World needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  timelines_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>(size));
    timelines_.push_back(std::make_unique<timemodel::Timeline>());
  }
  barrier_ = std::make_unique<BarrierState>(static_cast<std::size_t>(size));
}

World::~World() = default;
World::World(World&&) noexcept = default;

void World::run(const std::function<void(Communicator&)>& rank_main) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(*this, r);
      try {
        rank_main(comm);
      } catch (...) {
        std::lock_guard<std::mutex> guard(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  PSF_METRIC_ADD("minimpi.world_runs", 1);
  PSF_METRIC_GAUGE_MAX("minimpi.makespan_vtime", makespan());

  // Leaked messages indicate a protocol bug in the caller; surface loudly.
  for (int r = 0; r < size_; ++r) {
    const std::size_t pending =
        mailboxes_[static_cast<std::size_t>(r)]->pending();
    PSF_CHECK_MSG(pending == 0 || first_error != nullptr,
                  "rank " << r << " finished with " << pending
                          << " unconsumed messages");
  }
  if (first_error) std::rethrow_exception(first_error);
}

support::Status World::try_run(
    const std::function<void(Communicator&)>& rank_main) {
  try {
    run(rank_main);
  } catch (const std::exception& error) {
    return support::Status::internal(std::string("rank failed: ") +
                                     error.what());
  } catch (...) {
    return support::Status::internal("rank failed with a non-std exception");
  }
  return support::Status::ok();
}

double World::rank_vtime(int rank) const {
  PSF_CHECK(rank >= 0 && rank < size_);
  return timelines_[static_cast<std::size_t>(rank)]->now();
}

double World::makespan() const {
  double maximum = 0.0;
  for (const auto& timeline : timelines_) {
    maximum = std::max(maximum, timeline->now());
  }
  return maximum;
}

void World::reset_timelines() {
  for (auto& timeline : timelines_) timeline->reset();
}

void World::set_trace(timemodel::TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ == nullptr) return;
  for (int r = 0; r < size_; ++r) {
    trace_->set_process_name(r, "rank" + std::to_string(r));
    trace_->set_lane_name(r, timemodel::kNetLane, "net");
  }
}

// --- point-to-point ---------------------------------------------------------

void Communicator::deliver(int dest, int tag,
                           support::PooledBuffer payload) {
  PSF_CHECK_MSG(dest >= 0 && dest < size(), "send to invalid rank " << dest);
  PSF_METRIC_ADD("minimpi.messages_sent", 1);
  PSF_METRIC_ADD("minimpi.bytes_sent", payload.size());
  // A fresh (non-recycled) payload means this send heap-allocated; the
  // steady-state contract is that this counter stops moving once the pool
  // is warm (asserted on the bench-smoke report in CI).
  if (payload.fresh()) PSF_METRIC_ADD("minimpi.payload_allocs", 1);
  const double call_begin = timeline().now();
  timeline().advance(world_->overheads_.mpi_call_s);
  Message message;
  message.source = rank_;
  message.tag = tag;
  message.arrival_vtime =
      timeline().now() +
      world_->network_.cost(static_cast<std::size_t>(
          static_cast<double>(payload.size()) * world_->byte_scale_));
  message.payload = std::move(payload);
  if (world_->trace_ != nullptr) {
    // The span covers the send call itself; the message carries its id so
    // the matching receive can record the send -> recv message edge.
    message.trace_span =
        world_->trace_->record("send", "comm", rank_, timemodel::kNetLane,
                               call_begin, timeline().now());
  }
  mailbox(dest).deposit(std::move(message));
}

void Communicator::consume(const Message& message) {
  PSF_METRIC_ADD("minimpi.messages_received", 1);
  PSF_METRIC_ADD("minimpi.bytes_received", message.payload.size());
#ifndef PSF_DISABLE_METRICS
  // Virtual time this rank stalls for the message to arrive — summed over
  // receives this is the halo-exchange / combine wait breakdown.
  const double wait = message.arrival_vtime - timeline().now();
  if (wait > 0.0) PSF_METRIC_OBSERVE("minimpi.recv_wait_vtime", wait);
#endif
  const double call_begin = timeline().now();
  timeline().advance(world_->overheads_.mpi_call_s);
  timeline().merge(message.arrival_vtime);
  if (world_->trace_ != nullptr) {
    // The span runs from recv entry to message arrival (call overhead plus
    // any wait); the edge ties it back to the originating send.
    const std::uint64_t recv_span =
        world_->trace_->record("recv", "comm", rank_, timemodel::kNetLane,
                               call_begin, timeline().now());
    world_->trace_->record_edge(message.trace_span, recv_span, "message");
  }
}

support::PooledBuffer Communicator::acquire_buffer(std::size_t bytes) {
  return support::BufferPool::global().acquire(bytes);
}

void Communicator::send(int dest, int tag, std::span<const std::byte> data) {
  support::PooledBuffer payload = acquire_buffer(data.size());
  if (!data.empty()) std::memcpy(payload.data(), data.data(), data.size());
  deliver(dest, tag, std::move(payload));
}

void Communicator::send_pooled(int dest, int tag,
                               support::PooledBuffer payload) {
  deliver(dest, tag, std::move(payload));
}

MessageInfo Communicator::recv(int source, int tag,
                               std::span<std::byte> out) {
  Message message = mailbox(rank_).retrieve(source, tag);
  PSF_CHECK_MSG(message.payload.size() <= out.size(),
                "recv buffer too small: got " << message.payload.size()
                                              << " bytes, buffer "
                                              << out.size());
  if (!message.payload.empty()) {
    std::memcpy(out.data(), message.payload.data(), message.payload.size());
  }
  consume(message);
  return {message.source, message.tag, message.payload.size()};
}

Message Communicator::recv_any(int source, int tag) {
  Message message = mailbox(rank_).retrieve(source, tag);
  consume(message);
  return message;
}

Request Communicator::isend(int dest, int tag,
                            std::span<const std::byte> data) {
  const std::size_t bytes = data.size();
  support::PooledBuffer payload = acquire_buffer(bytes);
  if (!data.empty()) std::memcpy(payload.data(), data.data(), bytes);
  deliver(dest, tag, std::move(payload));
  Request request;
  request.kind_ = Request::Kind::kSendDone;
  request.info_ = {rank_, tag, bytes};
  return request;
}

Request Communicator::isend_pooled(int dest, int tag,
                                   support::PooledBuffer payload) {
  const std::size_t bytes = payload.size();
  deliver(dest, tag, std::move(payload));
  Request request;
  request.kind_ = Request::Kind::kSendDone;
  request.info_ = {rank_, tag, bytes};
  return request;
}

Request Communicator::irecv(int source, int tag, std::span<std::byte> out) {
  Request request;
  request.kind_ = Request::Kind::kRecvPending;
  request.source_ = source;
  request.tag_ = tag;
  request.out_ = out;
  return request;
}

void Communicator::wait(Request& request) {
  PSF_CHECK_MSG(request.valid(), "wait() on an empty Request");
  PSF_METRIC_ADD("minimpi.waits", 1);
  if (request.kind_ == Request::Kind::kRecvPending) {
    request.info_ = recv(request.source_, request.tag_, request.out_);
  }
  request.kind_ = Request::Kind::kNone;
}

void Communicator::wait_all(std::span<Request> requests) {
  for (auto& request : requests) {
    if (request.valid()) wait(request);
  }
}

bool Communicator::probe(int source, int tag) {
  return mailbox(rank_).probe(source, tag);
}

// --- collectives ------------------------------------------------------------

void Communicator::barrier() {
  PSF_METRIC_ADD("minimpi.barriers", 1);
  const double barrier_begin = timeline().now();
  auto& state = *world_->barrier_;
  {
    std::lock_guard<std::mutex> guard(state.mutex);
    state.max_vtime = std::max(state.max_vtime, timeline().now());
  }
  state.rendezvous.arrive_and_wait();
  // All deposits are in; charge a log2(n)-deep latency chain for the
  // rendezvous itself, then rendezvous again before clearing the max so a
  // following barrier cannot race with stragglers reading it.
  const double depth =
      size() > 1 ? std::ceil(std::log2(static_cast<double>(size()))) : 0.0;
  double joint;
  {
    std::lock_guard<std::mutex> guard(state.mutex);
    joint = state.max_vtime + depth * world_->network_.latency_s;
  }
  timeline().merge(joint);
  if (world_->trace_ != nullptr) {
    world_->trace_->record("barrier", "comm", rank_, timemodel::kNetLane,
                           barrier_begin, timeline().now());
  }
  state.rendezvous.arrive_and_wait();
  if (rank_ == 0) {
    std::lock_guard<std::mutex> guard(state.mutex);
    state.max_vtime = 0.0;
  }
  state.rendezvous.arrive_and_wait();
}

void Communicator::bcast(std::span<std::byte> data, int root) {
  // Binomial tree rooted at `root`: relative rank r receives from
  // r - 2^k (its lowest set bit) and forwards to r + 2^j for all j below.
  const int n = size();
  if (n == 1) return;
  constexpr int kTag = 0x7fff0002;
  const int rel = (rank_ - root + n) % n;
  if (rel != 0) {
    const int lowest = rel & -rel;
    const int parent_rel = rel - lowest;
    const int parent = (parent_rel + root) % n;
    recv(parent, kTag, data);
  }
  const int subtree =
      rel == 0 ? static_cast<int>(std::bit_ceil(static_cast<unsigned>(n)))
               : (rel & -rel);
  for (int step = subtree >> 1; step >= 1; step >>= 1) {
    const int child_rel = rel + step;
    if (child_rel < n) {
      send((child_rel + root) % n, kTag, data);
    }
  }
}

void Communicator::reduce_bytes(
    std::span<std::byte> data, std::size_t elem_size, int root,
    const std::function<void(std::byte*, const std::byte*)>& combine) {
  PSF_CHECK_MSG(elem_size > 0 && data.size() % elem_size == 0,
                "reduce_bytes: buffer not a multiple of element size");
  const int n = size();
  if (n == 1) return;
  constexpr int kTag = 0x7fff0003;
  const int rel = (rank_ - root + n) % n;
  std::vector<std::byte> incoming(data.size());

  // Binomial tree combine: at step 2^k, relative ranks that are odd
  // multiples of 2^k send to (rel - 2^k); even multiples receive+combine.
  for (int step = 1; step < n; step <<= 1) {
    if ((rel & step) != 0) {
      const int parent = ((rel - step) + root) % n;
      send(parent, kTag, data);
      return;  // this rank's contribution is merged upstream
    }
    const int child_rel = rel + step;
    if (child_rel < n) {
      recv((child_rel + root) % n, kTag, incoming);
      for (std::size_t off = 0; off < data.size(); off += elem_size) {
        combine(data.data() + off, incoming.data() + off);
      }
    }
  }
}

std::vector<std::vector<std::byte>> Communicator::alltoallv(
    const std::vector<std::vector<std::byte>>& outbound, int tag) {
  std::vector<std::vector<std::byte>> inbound;
  alltoallv(outbound, tag, inbound);
  return inbound;
}

void Communicator::alltoallv(
    const std::vector<std::vector<std::byte>>& outbound, int tag,
    std::vector<std::vector<std::byte>>& inbound) {
  PSF_CHECK_MSG(outbound.size() == static_cast<std::size_t>(size()),
                "alltoallv needs one outbound buffer per rank");
  const int n = size();
  // assign() reuses each slot's existing capacity, so a caller that keeps
  // `inbound` across iterations pays no allocations in the steady state.
  inbound.resize(static_cast<std::size_t>(n));
  const auto& self = outbound[static_cast<std::size_t>(rank_)];
  inbound[static_cast<std::size_t>(rank_)].assign(self.begin(), self.end());

  // Post all sends first (buffered, non-blocking), then receive n-1
  // messages from distinct sources.
  for (int offset = 1; offset < n; ++offset) {
    const int dest = (rank_ + offset) % n;
    isend(dest, tag, outbound[static_cast<std::size_t>(dest)]);
  }
  for (int offset = 1; offset < n; ++offset) {
    const int source = (rank_ - offset + n) % n;
    Message message = recv_any(source, tag);
    const auto payload = message.payload.bytes();
    inbound[static_cast<std::size_t>(source)].assign(payload.begin(),
                                                     payload.end());
  }
}

}  // namespace psf::minimpi
