#include "minimpi/communicator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "support/crc32.h"
#include "support/metrics.h"
#include "support/sync.h"

namespace psf::minimpi {

// Shared state for the virtual-time-aware barrier: a cyclic rendezvous that
// also computes the max timeline across participants.
struct World::BarrierState {
  explicit BarrierState(std::size_t parties) : rendezvous(parties) {}

  support::CyclicBarrier rendezvous;
  std::mutex mutex;
  double max_vtime = 0.0;
};

// Message-fault injection state, installed once per World (set_msg_faults).
// Each rank draws from its own seeded stream and assigns its own send
// sequence numbers; deliver() touches only the sending rank's slot and
// accept_message() only the receiving rank's slot, so no slot is ever
// touched concurrently and the injected sequence is independent of
// executor width.
struct World::MsgFaultState {
  MsgFaultState(const fault::MsgFaultSpec& spec_in, int ranks)
      : spec(spec_in) {
    per_rank.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      per_rank.push_back(PerRank{
          fault::FaultRng(spec.seed ^
                          (0x9E3779B97F4A7C15ULL *
                           static_cast<std::uint64_t>(r + 1))),
          1,
          {}});
    }
  }

  struct PerRank {
    fault::FaultRng rng;
    std::uint64_t next_send_seq;
    // Receiver-side dedup backstop: last accepted send_seq per
    // (source, tag). Only this rank's own thread reads or writes it
    // (accept_message), so it needs no lock.
    std::map<std::pair<int, int>, std::uint64_t> last_accepted;
  };

  fault::MsgFaultSpec spec;
  std::vector<PerRank> per_rank;
};

// Sender-side small-message batching (one slot per rank; see
// set_coalescing). A Batch owns the frame buffer being packed for one
// destination; `active` lists destinations with a non-empty batch in
// first-append order, so a full flush deposits frames in a deterministic
// order independent of destination rank numbering.
struct World::CoalesceState {
  struct Batch {
    support::PooledBuffer frame;
    std::size_t used = 0;       ///< bytes written (header + subs)
    std::uint32_t count = 0;    ///< sub-messages packed so far
    double first_append_vtime = 0.0;
  };
  std::vector<Batch> per_dest;
  std::vector<int> active;
};

World::World(int size, timemodel::LinkModel network,
             timemodel::Overheads overheads)
    : size_(size), network_(network), overheads_(overheads) {
  PSF_CHECK_MSG(size > 0, "World needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  timelines_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>(size));
    timelines_.push_back(std::make_unique<timemodel::Timeline>());
  }
  barrier_ = std::make_unique<BarrierState>(static_cast<std::size_t>(size));
  msg_faults_ = std::make_unique<std::atomic<MsgFaultState*>>(nullptr);
  if (const char* env = std::getenv("PSF_COALESCE")) {
    const std::string_view value(env);
    if (value == "aggregate" || value == "agg") {
      set_coalescing(CoalesceMode::kAggregate);
    } else if (value == "1" || value == "on" || value == "subs") {
      set_coalescing(CoalesceMode::kPerSub);
    }
  }
}

World::~World() {
  if (msg_faults_ != nullptr) {
    delete msg_faults_->load(std::memory_order_acquire);
  }
}

World::World(World&&) noexcept = default;

void World::set_msg_faults(const fault::MsgFaultSpec& spec) {
  auto* state = new MsgFaultState(spec, size_);
  MsgFaultState* expected = nullptr;
  if (!msg_faults_->compare_exchange_strong(expected, state,
                                            std::memory_order_acq_rel)) {
    delete state;  // another rank won the install race
  }
}

bool World::msg_faults_enabled() const noexcept {
  return msg_fault_state() != nullptr;
}

void World::set_coalescing(CoalesceMode mode, std::size_t threshold_bytes,
                           std::size_t max_frame_bytes) {
  PSF_CHECK_MSG(max_frame_bytes >= sizeof(FrameHeader) +
                                       sizeof(FrameSubHeader) +
                                       threshold_bytes,
                "coalescing frame capacity cannot hold one threshold-sized "
                "message");
  coalesce_mode_ = mode;
  coalesce_threshold_ = threshold_bytes;
  coalesce_max_frame_ = max_frame_bytes;
  coalesce_.clear();
  if (mode == CoalesceMode::kOff) return;
  coalesce_.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    auto state = std::make_unique<CoalesceState>();
    state->per_dest.resize(static_cast<std::size_t>(size_));
    state->active.reserve(static_cast<std::size_t>(size_));
    coalesce_.push_back(std::move(state));
  }
}

World::CoalesceState* World::coalesce_slot(int rank) const noexcept {
  if (coalesce_.empty()) return nullptr;
  return coalesce_[static_cast<std::size_t>(rank)].get();
}

World::MsgFaultState* World::msg_fault_state() const noexcept {
  return msg_faults_->load(std::memory_order_acquire);
}

void World::run(const std::function<void(Communicator&)>& rank_main) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(*this, r);
      try {
        rank_main(comm);
        // End-of-rank flush boundary: a trailing batch whose receiver is
        // already blocked in recv() must still be deposited. Skipped on
        // exceptions (the pending-message drain check is waived there too).
        comm.flush_coalesced();
      } catch (...) {
        std::lock_guard<std::mutex> guard(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  PSF_METRIC_ADD("minimpi.world_runs", 1);
  PSF_METRIC_GAUGE_MAX("minimpi.makespan_vtime", makespan());

  // Leaked messages indicate a protocol bug in the caller; surface loudly.
  for (int r = 0; r < size_; ++r) {
    const std::size_t pending =
        mailboxes_[static_cast<std::size_t>(r)]->pending();
    PSF_CHECK_MSG(pending == 0 || first_error != nullptr,
                  "rank " << r << " finished with " << pending
                          << " unconsumed messages");
  }
  if (first_error) std::rethrow_exception(first_error);
}

support::Status World::try_run(
    const std::function<void(Communicator&)>& rank_main) {
  try {
    run(rank_main);
  } catch (const std::exception& error) {
    return support::Status::internal(std::string("rank failed: ") +
                                     error.what());
  } catch (...) {
    return support::Status::internal("rank failed with a non-std exception");
  }
  return support::Status::ok();
}

double World::rank_vtime(int rank) const {
  PSF_CHECK(rank >= 0 && rank < size_);
  return timelines_[static_cast<std::size_t>(rank)]->now();
}

double World::makespan() const {
  double maximum = 0.0;
  for (const auto& timeline : timelines_) {
    maximum = std::max(maximum, timeline->now());
  }
  return maximum;
}

void World::reset_timelines() {
  for (auto& timeline : timelines_) timeline->reset();
}

void World::set_trace(timemodel::TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ == nullptr) return;
  for (int r = 0; r < size_; ++r) {
    trace_->set_process_name(r, "rank" + std::to_string(r));
    trace_->set_lane_name(r, timemodel::kNetLane, "net");
  }
}

// --- point-to-point ---------------------------------------------------------

void Communicator::deliver(int dest, int tag,
                           support::PooledBuffer payload) {
  PSF_CHECK_MSG(dest >= 0 && dest < size(), "send to invalid rank " << dest);
  if (World::CoalesceState* coalesce = world_->coalesce_slot(rank_)) {
    if (payload.size() <= world_->coalesce_threshold_) {
      coalesce_append(*coalesce, dest, tag, std::move(payload));
      return;
    }
    // A super-threshold send must not overtake batched smalls to the same
    // destination (MPI non-overtaking per (source, dest)).
    coalesce_flush_dest(*coalesce, dest);
  }
  PSF_METRIC_ADD("minimpi.messages_sent", 1);
  PSF_METRIC_ADD("minimpi.bytes_sent", payload.size());
  PSF_METRIC_HIST_RECORD("minimpi.msg_bytes", payload.size());
  // A fresh (non-recycled) payload means this send heap-allocated; the
  // steady-state contract is that this counter stops moving once the pool
  // is warm (asserted on the bench-smoke report in CI).
  if (payload.fresh()) PSF_METRIC_ADD("minimpi.payload_allocs", 1);
  const double call_begin = timeline().now();
  timeline().advance(world_->overheads_.mpi_call_s);

  const auto network_cost = [this](std::size_t bytes) {
    return world_->network_.cost(static_cast<std::size_t>(
        static_cast<double>(bytes) * world_->byte_scale_));
  };

  // Fault injection (docs/RESILIENCE.md): a simulated lossy transport. One
  // seeded draw per attempt decides the message's fate over disjoint
  // probability ranges. Drops and corruptions charge a virtual
  // retransmission timeout + linear backoff on the sender and redraw; the
  // delivered payload is always the original bytes, so results stay
  // bit-identical to a fault-free run. With no faults installed this whole
  // block is skipped and the send path is byte-for-byte the old one.
  std::uint32_t crc = 0;
  std::uint64_t send_seq = 0;
  int retries = 0;
  double extra_delay = 0.0;
  bool duplicate = false;
  World::MsgFaultState* faults = world_->msg_fault_state();
  if (faults != nullptr) {
    const fault::MsgFaultSpec& spec = faults->spec;
    auto& mine = faults->per_rank[static_cast<std::size_t>(rank_)];
    crc = support::crc32(payload.bytes());
    send_seq = mine.next_send_seq++;
    auto& log = fault::FaultLog::current();
    const auto log_event = [&](const char* what) {
      if (log.enabled()) {
        log.record(rank_, std::string(what) + " dest=" + std::to_string(dest) +
                              " tag=" + std::to_string(tag) +
                              " seq=" + std::to_string(send_seq));
      }
    };
    for (;;) {
      if (retries > spec.max_retries) {
        throw std::runtime_error(
            "minimpi: send to rank " + std::to_string(dest) + " exhausted " +
            std::to_string(spec.max_retries) +
            " retransmissions under the fault plan");
      }
      const double draw = mine.rng.next_double();
      double threshold = spec.p_drop;
      if (draw < threshold) {
        // Dropped in flight: the retransmission timer expires and the
        // sender re-sends after a backoff. Nothing reaches the mailbox.
        timeline().advance(spec.timeout_s + spec.backoff_s * retries);
        ++retries;
        PSF_METRIC_ADD("minimpi.msgs_dropped", 1);
        PSF_METRIC_ADD("minimpi.retries", 1);
        log_event("drop");
        continue;
      }
      threshold += spec.p_corrupt;
      if (draw < threshold) {
        // A damaged copy reaches the receiver, which rejects it by CRC and
        // stays silent; the sender's timer then fires as for a drop. The
        // bad copy carries the original CRC (that is what makes it
        // detectable) and the same sequence number.
        Message bad;
        bad.source = rank_;
        bad.tag = tag;
        bad.crc = payload.empty() ? ~crc : crc;
        bad.send_seq = send_seq;
        bad.arrival_vtime = timeline().now() + network_cost(payload.size());
        bad.payload = acquire_buffer(payload.size());
        if (!payload.empty()) {
          std::memcpy(bad.payload.data(), payload.data(), payload.size());
          bad.payload.data()[0] ^= std::byte{0xFF};
        }
        mailbox(dest).deposit(std::move(bad));
        timeline().advance(spec.timeout_s + spec.backoff_s * retries);
        ++retries;
        PSF_METRIC_ADD("minimpi.msgs_corrupted", 1);
        PSF_METRIC_ADD("minimpi.retries", 1);
        log_event("corrupt");
        continue;
      }
      threshold += spec.p_dup;
      if (draw < threshold) {
        duplicate = true;
        PSF_METRIC_ADD("minimpi.dup_deliveries", 1);
        log_event("dup");
        break;
      }
      threshold += spec.p_delay;
      if (draw < threshold) {
        extra_delay = spec.delay_s;
        PSF_METRIC_ADD("minimpi.msgs_delayed", 1);
        log_event("delay");
        break;
      }
      break;
    }
    if (retries > 0) {
      PSF_METRIC_ADD("fault.recoveries", 1);
      if (world_->trace_ != nullptr) {
        world_->trace_->record("msg retry", "fault", rank_,
                               timemodel::kNetLane, call_begin,
                               timeline().now());
      }
    }
  }

  Message message;
  message.source = rank_;
  message.tag = tag;
  message.crc = crc;
  message.send_seq = send_seq;
  message.arrival_vtime =
      timeline().now() + extra_delay + network_cost(payload.size());
  message.payload = std::move(payload);
  if (world_->trace_ != nullptr) {
    // The span covers the send call itself; the message carries its id so
    // the matching receive can record the send -> recv message edge. Under
    // retries the preceding "msg retry" fault span covers the backoff time
    // and the send span degenerates to the final (instant) attempt.
    const double send_begin = retries > 0 ? timeline().now() : call_begin;
    message.trace_span =
        world_->trace_->record("send", "comm", rank_, timemodel::kNetLane,
                               send_begin, timeline().now());
  }
  Message copy;
  if (duplicate) {
    // A second, byte-identical copy delivered right behind the first; the
    // receiver drops it by sequence number (Mailbox::purge_duplicates).
    // Built before the original moves into the mailbox.
    copy.source = rank_;
    copy.tag = tag;
    copy.crc = crc;
    copy.send_seq = send_seq;
    copy.arrival_vtime = message.arrival_vtime;
    copy.trace_span = message.trace_span;
    copy.payload = acquire_buffer(message.payload.size());
    if (!message.payload.empty()) {
      std::memcpy(copy.payload.data(), message.payload.data(),
                  message.payload.size());
    }
  }
  if (duplicate) {
    // One atomic deposit for both copies: if the receiver could retrieve
    // the original between two separate deposits, its purge would miss the
    // copy and the copy would rot in the mailbox past the end-of-run drain
    // check (or worse, be read as a real message).
    mailbox(dest).deposit_pair(std::move(message), std::move(copy));
  } else {
    mailbox(dest).deposit(std::move(message));
  }
}

void Communicator::coalesce_append(World::CoalesceState& state, int dest,
                                   int tag, support::PooledBuffer payload) {
  PSF_METRIC_ADD("minimpi.messages_sent", 1);
  PSF_METRIC_ADD("minimpi.bytes_sent", payload.size());
  PSF_METRIC_HIST_RECORD("minimpi.msg_bytes", payload.size());
  if (payload.fresh()) PSF_METRIC_ADD("minimpi.payload_allocs", 1);

  auto& batch = state.per_dest[static_cast<std::size_t>(dest)];
  const std::size_t need = sizeof(FrameSubHeader) + payload.size();
  if (batch.count > 0 && batch.used + need > world_->coalesce_max_frame_) {
    coalesce_flush_dest(state, dest);
  }
  if (batch.count == 0) {
    batch.frame = acquire_buffer(world_->coalesce_max_frame_);
    // The frame is the pooled deposit: one payload_allocs charge per FRAME.
    // (Sub payloads were charged when the caller acquired them, exactly as
    // on the uncoalesced path; the receiver-side unpack buffers recycle
    // through the pool and charge nothing.)
    if (batch.frame.fresh()) PSF_METRIC_ADD("minimpi.payload_allocs", 1);
    batch.used = sizeof(FrameHeader);
    batch.first_append_vtime = timeline().now();
    state.active.push_back(dest);
  }

  FrameSubHeader sub;
  sub.tag = tag;
  sub.bytes = static_cast<std::uint32_t>(payload.size());
  World::MsgFaultState* faults = world_->msg_fault_state();
  if (faults != nullptr) {
    // CRC and sender sequence are assigned at APPEND, in send order, from
    // the same per-rank counter as individual sends — the receiver's
    // accept/purge/backstop protocol is agnostic to how messages traveled.
    auto& mine = faults->per_rank[static_cast<std::size_t>(rank_)];
    sub.crc = support::crc32(payload.bytes());
    sub.send_seq = mine.next_send_seq++;
  }
  if (world_->coalesce_mode() == CoalesceMode::kPerSub) {
    // Per-sub pricing: advance and price exactly like an individual send,
    // so virtual times are bit-identical to the uncoalesced transport.
    // (Under faults the arrival is recomputed at flush, when the frame's
    // fate — and therefore the true departure time — is known.)
    const double call_begin = timeline().now();
    timeline().advance(world_->overheads_.mpi_call_s);
    sub.arrival_vtime =
        timeline().now() +
        world_->network_.cost(static_cast<std::size_t>(
            static_cast<double>(payload.size()) * world_->byte_scale_));
    if (world_->trace_ != nullptr) {
      sub.trace_span =
          world_->trace_->record("send", "comm", rank_, timemodel::kNetLane,
                                 call_begin, timeline().now());
    }
  }
  std::memcpy(batch.frame.data() + batch.used, &sub, sizeof(sub));
  batch.used += sizeof(sub);
  if (!payload.empty()) {
    std::memcpy(batch.frame.data() + batch.used, payload.data(),
                payload.size());
    batch.used += payload.size();
  }
  batch.count += 1;
}

void Communicator::coalesce_flush_dest(World::CoalesceState& state,
                                       int dest) {
  auto& batch = state.per_dest[static_cast<std::size_t>(dest)];
  if (batch.count == 0) return;

  const auto network_cost = [this](std::size_t bytes) {
    return world_->network_.cost(static_cast<std::size_t>(
        static_cast<double>(bytes) * world_->byte_scale_));
  };
  const bool aggregate =
      world_->coalesce_mode() == CoalesceMode::kAggregate;
  World::MsgFaultState* faults = world_->msg_fault_state();

  FrameHeader header;
  header.count = batch.count;
  std::memcpy(batch.frame.data(), &header, sizeof(header));
  const std::span<const std::byte> frame(batch.frame.data(), batch.used);

  // Re-stamp the sub-headers for one delivery attempt. Aggregate pricing
  // gives every sub the FRAME's arrival (one alpha + aggregate-bytes beta);
  // per-sub pricing keeps the append-time arrivals bit-identical to
  // individual sends unless faults moved the departure time.
  const auto stamp = [&](double delay_s, bool dup, std::uint64_t span_id) {
    const double frame_arrival =
        timeline().now() + delay_s + network_cost(batch.used);
    std::size_t offset = sizeof(FrameHeader);
    for (std::uint32_t i = 0; i < batch.count; ++i) {
      FrameSubHeader sub;
      std::memcpy(&sub, batch.frame.data() + offset, sizeof(sub));
      if (aggregate) {
        sub.arrival_vtime = frame_arrival;
        sub.trace_span = span_id;
      } else if (faults != nullptr) {
        sub.arrival_vtime =
            timeline().now() + delay_s + network_cost(sub.bytes);
      }
      sub.flags = dup ? kFrameSubDuplicate : 0u;
      std::memcpy(batch.frame.data() + offset, &sub, sizeof(sub));
      offset += sizeof(sub) + sub.bytes;
    }
  };

  const double call_begin = timeline().now();
  if (aggregate) {
    // One MPI call for the whole frame: the time model prices the
    // aggregate (the CrystalGPU-style task-aggregation optimization).
    timeline().advance(world_->overheads_.mpi_call_s);
  }

  // The frame is the wire message, so the fault injector draws ONE fate
  // per delivery attempt for the whole frame (mirroring deliver()).
  int retries = 0;
  double extra_delay = 0.0;
  bool duplicate = false;
  if (faults != nullptr) {
    const fault::MsgFaultSpec& spec = faults->spec;
    auto& mine = faults->per_rank[static_cast<std::size_t>(rank_)];
    auto& log = fault::FaultLog::current();
    const auto log_event = [&](const char* what) {
      if (log.enabled()) {
        log.record(rank_, std::string(what) +
                              " dest=" + std::to_string(dest) +
                              " frame_subs=" + std::to_string(batch.count));
      }
    };
    for (;;) {
      if (retries > spec.max_retries) {
        throw std::runtime_error(
            "minimpi: coalesced frame to rank " + std::to_string(dest) +
            " exhausted " + std::to_string(spec.max_retries) +
            " retransmissions under the fault plan");
      }
      const double draw = mine.rng.next_double();
      double threshold = spec.p_drop;
      if (draw < threshold) {
        timeline().advance(spec.timeout_s + spec.backoff_s * retries);
        ++retries;
        PSF_METRIC_ADD("minimpi.msgs_dropped", 1);
        PSF_METRIC_ADD("minimpi.retries", 1);
        log_event("drop");
        continue;
      }
      threshold += spec.p_corrupt;
      if (draw < threshold) {
        // The damaged frame reaches the receiver with EVERY sub corrupted
        // (deposit_frame damages each payload under its original CRC), so
        // each sub is CRC-rejected and the clean retransmission below is
        // accepted sub-for-sub.
        stamp(0.0, /*dup=*/false, 0);
        mailbox(dest).deposit_frame(rank_, frame, /*corrupt=*/true);
        timeline().advance(spec.timeout_s + spec.backoff_s * retries);
        ++retries;
        PSF_METRIC_ADD("minimpi.msgs_corrupted", 1);
        PSF_METRIC_ADD("minimpi.retries", 1);
        log_event("corrupt");
        continue;
      }
      threshold += spec.p_dup;
      if (draw < threshold) {
        duplicate = true;
        PSF_METRIC_ADD("minimpi.dup_deliveries", 1);
        log_event("dup");
        break;
      }
      threshold += spec.p_delay;
      if (draw < threshold) {
        extra_delay = spec.delay_s;
        PSF_METRIC_ADD("minimpi.msgs_delayed", 1);
        log_event("delay");
        break;
      }
      break;
    }
    if (retries > 0) {
      PSF_METRIC_ADD("fault.recoveries", 1);
      if (world_->trace_ != nullptr) {
        world_->trace_->record("msg retry", "fault", rank_,
                               timemodel::kNetLane, call_begin,
                               timeline().now());
      }
    }
  }

  std::uint64_t span_id = 0;
  if (aggregate && world_->trace_ != nullptr) {
    const double send_begin = retries > 0 ? timeline().now() : call_begin;
    span_id =
        world_->trace_->record("send", "comm", rank_, timemodel::kNetLane,
                               send_begin, timeline().now());
  }
  stamp(extra_delay, duplicate, span_id);
  mailbox(dest).deposit_frame(rank_, frame, /*corrupt=*/false);
  PSF_METRIC_ADD("minimpi.frames_sent", 1);
  PSF_METRIC_ADD("minimpi.msgs_coalesced", batch.count);
  batch.frame.release();
  batch.used = 0;
  batch.count = 0;
  std::erase(state.active, dest);
}

void Communicator::flush_coalesced() {
  World::CoalesceState* state = world_->coalesce_slot(rank_);
  if (state == nullptr) return;
  // First-append order; coalesce_flush_dest removes the destination from
  // `active`, so draining the front is both deterministic and
  // allocation-free.
  while (!state->active.empty()) {
    coalesce_flush_dest(*state, state->active.front());
  }
}

void Communicator::consume(const Message& message) {
  PSF_METRIC_ADD("minimpi.messages_received", 1);
  PSF_METRIC_ADD("minimpi.bytes_received", message.payload.size());
#ifndef PSF_DISABLE_METRICS
  // Virtual time this rank stalls for the message to arrive — summed over
  // receives this is the halo-exchange / combine wait breakdown.
  const double wait = message.arrival_vtime - timeline().now();
  if (wait > 0.0) PSF_METRIC_OBSERVE("minimpi.recv_wait_vtime", wait);
#endif
  const double call_begin = timeline().now();
  timeline().advance(world_->overheads_.mpi_call_s);
  timeline().merge(message.arrival_vtime);
  if (world_->trace_ != nullptr) {
    // The span runs from recv entry to message arrival (call overhead plus
    // any wait); the edge ties it back to the originating send.
    const std::uint64_t recv_span =
        world_->trace_->record("recv", "comm", rank_, timemodel::kNetLane,
                               call_begin, timeline().now());
    world_->trace_->record_edge(message.trace_span, recv_span, "message");
  }
}

support::PooledBuffer Communicator::acquire_buffer(std::size_t bytes) {
  return support::BufferPool::global().acquire(bytes);
}

bool Communicator::accept_message(const Message& message) {
  if (message.send_seq == 0) return true;  // pre-fault-era message
  if (support::crc32(message.payload.bytes()) != message.crc) {
    // Corrupted delivery: discard silently — the sender's retransmission
    // timer has already queued (or will queue) a clean copy.
    PSF_METRIC_ADD("minimpi.crc_rejects", 1);
    auto& log = fault::FaultLog::current();
    if (log.enabled()) {
      log.record(rank_, "crc_reject src=" + std::to_string(message.source) +
                            " tag=" + std::to_string(message.tag) +
                            " seq=" + std::to_string(message.send_seq));
    }
    return false;
  }
  // Dedup. The purge is the fast path: it drops the byte-identical copy
  // while it still sits right behind the original at the queue front. The
  // sequence check is the backstop for the race it cannot cover — the
  // original and its copy are two separate deposits, so this rank can
  // retrieve the original before the copy lands, and the stale copy would
  // later be consumed as a real message. Both paths bump the same
  // counters, so totals stay independent of which one wins; neither logs
  // to the FaultLog (its position would depend on the race — the sender's
  // "dup" record already pins the injection deterministically).
  std::size_t discarded = mailbox(rank_).purge_duplicates(
      message.source, message.tag, message.send_seq);
  bool stale = false;
  World::MsgFaultState* faults = world_->msg_fault_state();
  if (faults != nullptr) {
    auto& mine = faults->per_rank[static_cast<std::size_t>(rank_)];
    auto [it, inserted] = mine.last_accepted.try_emplace(
        std::pair{message.source, message.tag}, message.send_seq);
    if (!inserted) {
      if (message.send_seq == it->second) {
        stale = true;
        ++discarded;
      } else {
        it->second = message.send_seq;
      }
    }
  }
  if (discarded > 0) {
    PSF_METRIC_ADD("minimpi.dup_discards", discarded);
    PSF_METRIC_ADD("fault.recoveries", 1);
  }
  return !stale;
}

Message Communicator::retrieve_checked(int source, int tag) {
  // Flush boundary: entering a blocking receive. ALL destinations flush,
  // not just `source` — the awaited message may depend transitively on a
  // third rank receiving our batched smalls first.
  flush_coalesced();
  World::MsgFaultState* faults = world_->msg_fault_state();
  if (faults == nullptr) return mailbox(rank_).retrieve(source, tag);
  const int deadline_ms = faults->spec.deadline_ms;
  for (;;) {
    Message message;
    if (deadline_ms > 0) {
      if (!mailbox(rank_).retrieve_for(
              source, tag, static_cast<double>(deadline_ms) / 1e3, message)) {
        throw std::runtime_error(
            "minimpi: rank " + std::to_string(rank_) + " recv deadline of " +
            std::to_string(deadline_ms) + " ms exceeded (fault plan)");
      }
    } else {
      message = mailbox(rank_).retrieve(source, tag);
    }
    if (accept_message(message)) return message;
  }
}

void Communicator::send(int dest, int tag, std::span<const std::byte> data) {
  support::PooledBuffer payload = acquire_buffer(data.size());
  if (!data.empty()) std::memcpy(payload.data(), data.data(), data.size());
  deliver(dest, tag, std::move(payload));
}

void Communicator::send_pooled(int dest, int tag,
                               support::PooledBuffer payload) {
  deliver(dest, tag, std::move(payload));
}

MessageInfo Communicator::recv(int source, int tag,
                               std::span<std::byte> out) {
  Message message = retrieve_checked(source, tag);
  PSF_CHECK_MSG(message.payload.size() <= out.size(),
                "recv buffer too small: got " << message.payload.size()
                                              << " bytes, buffer "
                                              << out.size());
  if (!message.payload.empty()) {
    std::memcpy(out.data(), message.payload.data(), message.payload.size());
  }
  consume(message);
  return {message.source, message.tag, message.payload.size()};
}

Message Communicator::recv_any(int source, int tag) {
  Message message = retrieve_checked(source, tag);
  consume(message);
  return message;
}

support::StatusOr<MessageInfo> Communicator::recv_deadline(
    int source, int tag, std::span<std::byte> out, double timeout_s) {
  flush_coalesced();
  for (;;) {
    Message message;
    if (!mailbox(rank_).retrieve_for(source, tag, timeout_s, message)) {
      return support::Status::deadline_exceeded(
          "recv_deadline: rank " + std::to_string(rank_) +
          " saw no message matching (source=" + std::to_string(source) +
          ", tag=" + std::to_string(tag) + ") within " +
          std::to_string(timeout_s) + " s");
    }
    if (!accept_message(message)) continue;  // CRC reject: keep waiting
    PSF_CHECK_MSG(message.payload.size() <= out.size(),
                  "recv buffer too small: got " << message.payload.size()
                                                << " bytes, buffer "
                                                << out.size());
    if (!message.payload.empty()) {
      std::memcpy(out.data(), message.payload.data(), message.payload.size());
    }
    consume(message);
    return MessageInfo{message.source, message.tag, message.payload.size()};
  }
}

Request Communicator::isend(int dest, int tag,
                            std::span<const std::byte> data) {
  const std::size_t bytes = data.size();
  support::PooledBuffer payload = acquire_buffer(bytes);
  if (!data.empty()) std::memcpy(payload.data(), data.data(), bytes);
  deliver(dest, tag, std::move(payload));
  Request request;
  request.kind_ = Request::Kind::kSendDone;
  request.info_ = {rank_, tag, bytes};
  return request;
}

Request Communicator::isend_pooled(int dest, int tag,
                                   support::PooledBuffer payload) {
  const std::size_t bytes = payload.size();
  deliver(dest, tag, std::move(payload));
  Request request;
  request.kind_ = Request::Kind::kSendDone;
  request.info_ = {rank_, tag, bytes};
  return request;
}

Request Communicator::irecv(int source, int tag, std::span<std::byte> out) {
  Request request;
  request.kind_ = Request::Kind::kRecvPending;
  request.source_ = source;
  request.tag_ = tag;
  request.out_ = out;
  return request;
}

void Communicator::wait(Request& request) {
  PSF_CHECK_MSG(request.valid(), "wait() on an empty Request");
  PSF_METRIC_ADD("minimpi.waits", 1);
  // Flush boundary: wait() completes outstanding non-blocking traffic, so
  // batched isends must hit the wire here even for send-only requests.
  flush_coalesced();
  if (request.kind_ == Request::Kind::kRecvPending) {
    request.info_ = recv(request.source_, request.tag_, request.out_);
  }
  request.kind_ = Request::Kind::kNone;
}

void Communicator::wait_all(std::span<Request> requests) {
  for (auto& request : requests) {
    if (request.valid()) wait(request);
  }
}

bool Communicator::probe(int source, int tag) {
  // Flush boundary: a rank probing for traffic may itself be the sender
  // another rank's probe loop waits on (and self-sends must be visible).
  flush_coalesced();
  return mailbox(rank_).probe(source, tag);
}

// --- collectives ------------------------------------------------------------

void Communicator::barrier() {
  // Flush boundary: traffic sent before a barrier must be deliverable to
  // receivers on the far side of it.
  flush_coalesced();
  PSF_METRIC_ADD("minimpi.barriers", 1);
  const double barrier_begin = timeline().now();
  auto& state = *world_->barrier_;
  {
    std::lock_guard<std::mutex> guard(state.mutex);
    state.max_vtime = std::max(state.max_vtime, timeline().now());
  }
  state.rendezvous.arrive_and_wait();
  // All deposits are in; charge a log2(n)-deep latency chain for the
  // rendezvous itself, then rendezvous again before clearing the max so a
  // following barrier cannot race with stragglers reading it.
  const double depth =
      size() > 1 ? std::ceil(std::log2(static_cast<double>(size()))) : 0.0;
  double joint;
  {
    std::lock_guard<std::mutex> guard(state.mutex);
    joint = state.max_vtime + depth * world_->network_.latency_s;
  }
  timeline().merge(joint);
  if (world_->trace_ != nullptr) {
    world_->trace_->record("barrier", "comm", rank_, timemodel::kNetLane,
                           barrier_begin, timeline().now());
  }
  state.rendezvous.arrive_and_wait();
  if (rank_ == 0) {
    std::lock_guard<std::mutex> guard(state.mutex);
    state.max_vtime = 0.0;
  }
  state.rendezvous.arrive_and_wait();
}

void Communicator::bcast(std::span<std::byte> data, int root) {
  // Binomial tree rooted at `root`: relative rank r receives from
  // r - 2^k (its lowest set bit) and forwards to r + 2^j for all j below.
  const int n = size();
  if (n == 1) return;
  constexpr int kTag = 0x7fff0002;
  const int rel = (rank_ - root + n) % n;
  if (rel != 0) {
    const int lowest = rel & -rel;
    const int parent_rel = rel - lowest;
    const int parent = (parent_rel + root) % n;
    recv(parent, kTag, data);
  }
  const int subtree =
      rel == 0 ? static_cast<int>(std::bit_ceil(static_cast<unsigned>(n)))
               : (rel & -rel);
  for (int step = subtree >> 1; step >= 1; step >>= 1) {
    const int child_rel = rel + step;
    if (child_rel < n) {
      send((child_rel + root) % n, kTag, data);
    }
  }
}

void Communicator::reduce_bytes(
    std::span<std::byte> data, std::size_t elem_size, int root,
    const std::function<void(std::byte*, const std::byte*)>& combine) {
  PSF_CHECK_MSG(elem_size > 0 && data.size() % elem_size == 0,
                "reduce_bytes: buffer not a multiple of element size");
  const int n = size();
  if (n == 1) return;
  constexpr int kTag = 0x7fff0003;
  const int rel = (rank_ - root + n) % n;
  std::vector<std::byte> incoming(data.size());

  // Binomial tree combine: at step 2^k, relative ranks that are odd
  // multiples of 2^k send to (rel - 2^k); even multiples receive+combine.
  for (int step = 1; step < n; step <<= 1) {
    if ((rel & step) != 0) {
      const int parent = ((rel - step) + root) % n;
      send(parent, kTag, data);
      return;  // this rank's contribution is merged upstream
    }
    const int child_rel = rel + step;
    if (child_rel < n) {
      recv((child_rel + root) % n, kTag, incoming);
      for (std::size_t off = 0; off < data.size(); off += elem_size) {
        combine(data.data() + off, incoming.data() + off);
      }
    }
  }
}

std::vector<std::vector<std::byte>> Communicator::alltoallv(
    const std::vector<std::vector<std::byte>>& outbound, int tag) {
  std::vector<std::vector<std::byte>> inbound;
  alltoallv(outbound, tag, inbound);
  return inbound;
}

void Communicator::alltoallv(
    const std::vector<std::vector<std::byte>>& outbound, int tag,
    std::vector<std::vector<std::byte>>& inbound) {
  PSF_CHECK_MSG(outbound.size() == static_cast<std::size_t>(size()),
                "alltoallv needs one outbound buffer per rank");
  const int n = size();
  // assign() reuses each slot's existing capacity, so a caller that keeps
  // `inbound` across iterations pays no allocations in the steady state.
  inbound.resize(static_cast<std::size_t>(n));
  const auto& self = outbound[static_cast<std::size_t>(rank_)];
  inbound[static_cast<std::size_t>(rank_)].assign(self.begin(), self.end());

  // Post all sends first (buffered, non-blocking), then receive n-1
  // messages from distinct sources.
  for (int offset = 1; offset < n; ++offset) {
    const int dest = (rank_ + offset) % n;
    isend(dest, tag, outbound[static_cast<std::size_t>(dest)]);
  }
  for (int offset = 1; offset < n; ++offset) {
    const int source = (rank_ - offset + n) % n;
    Message message = recv_any(source, tag);
    const auto payload = message.payload.bytes();
    inbound[static_cast<std::size_t>(source)].assign(payload.begin(),
                                                     payload.end());
  }
}

}  // namespace psf::minimpi
