// PSF — Pattern Specification Framework
// Message representation and matching queue (mailbox) for minimpi.
//
// minimpi is the in-process stand-in for MPI (see DESIGN.md §2): ranks are
// threads of one process, the transport is shared memory, and every message
// carries the sender's virtual departure time so the timemodel can charge
// realistic network costs.
//
// Payloads are pooled (`support::PooledBuffer`): the sender packs into
// recycled storage and the mailbox hands that same storage to the receiver,
// so the steady state performs zero payload allocations and at most one
// copy (into the user's span on `recv`; zero for `recv_any`).
//
// The mailbox is sharded by source rank. Each sender lands in its own shard
// (up to kMaxShards), and within a shard messages are segregated into
// per-(source, tag) FIFO queues, so an exact-match retrieve is a map lookup
// plus a pop from the queue front — no linear scan over unrelated traffic.
// Wildcard retrieves take a slow path: every queued message carries a
// deposit sequence number, and the wildcard scan picks the matching message
// with the smallest one, preserving the arrival-order semantics of the old
// single-list design.
//
// Single-consumer contract: only the owning rank's thread calls
// retrieve/retrieve_pending on its mailbox (minimpi gives each rank exactly
// one thread of control for communication). That is what makes the
// `notify_one` wakeup in `deposit` sufficient — there is never more than
// one waiter per mailbox — and what makes the two-pass wildcard scan safe:
// a message observed at the front of a queue can only be removed by the
// scanning thread itself.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "support/buffer_pool.h"
#include "support/error.h"

namespace psf::minimpi {

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Completed-receive metadata (MPI_Status equivalent).
struct MessageInfo {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// An in-flight buffered message. The payload is pooled storage owned by
/// the message; receiving a message transfers that ownership to the caller,
/// and the storage returns to the pool when the message is destroyed.
struct Message {
  int source = 0;
  int tag = 0;
  support::PooledBuffer payload;
  /// Virtual time at which the message arrives at the receiver (departure
  /// time + link cost), merged into the receiver's timeline on receipt.
  double arrival_vtime = 0.0;
  /// Trace span id of the send operation (0 when tracing is off), so the
  /// receive can record a send -> recv dependency edge.
  std::uint64_t trace_span = 0;
  /// Mailbox-assigned deposit sequence number; orders wildcard matching.
  std::uint64_t seq = 0;
  /// CRC-32 of the payload, filled by the sender when message-fault
  /// injection is active (0 means "not checksummed").
  std::uint32_t crc = 0;
  /// Sender-assigned per-rank sequence number under fault injection; the
  /// receiver dedups duplicated deliveries by it. 0 means "no injection".
  std::uint64_t send_seq = 0;
};

/// Wire format of a coalesced small-message frame (sender-side batching,
/// see Communicator). A frame is one pooled buffer holding
///
///   [FrameHeader][FrameSubHeader][payload]...[FrameSubHeader][payload]
///
/// Sub-messages are packed back-to-back in send order; headers are written
/// and read with memcpy, so no alignment is required inside the frame. The
/// receiver-side unpack (`Mailbox::deposit_frame`) turns every sub back
/// into an individual Message, preserving per-(source, tag) FIFO order and
/// assigning consecutive deposit sequence numbers so wildcard matching sees
/// the same earliest-first order as individual deposits.
struct FrameHeader {
  std::uint32_t count = 0;     ///< number of sub-messages in the frame
  std::uint32_t reserved = 0;  ///< keeps the payload area 8-byte offset
};

struct FrameSubHeader {
  std::uint64_t send_seq = 0;   ///< sender fault-era sequence (0 = none)
  std::uint64_t trace_span = 0; ///< send span id (0 = tracing off)
  double arrival_vtime = 0.0;   ///< priced arrival at the receiver
  std::int32_t tag = 0;
  std::uint32_t bytes = 0;      ///< payload bytes following this header
  std::uint32_t crc = 0;        ///< CRC-32 under fault injection (0 = none)
  std::uint32_t flags = 0;      ///< kFrameSubDuplicate
};

/// flags bit: deposit a second, byte-identical copy right behind the sub
/// (the fault injector's duplicate-delivery fate, applied frame-wide).
inline constexpr std::uint32_t kFrameSubDuplicate = 1u << 0;

/// Debug builds enforce the single-consumer contract instead of silently
/// relying on it: at most one thread may block in retrieve/retrieve_for on
/// a mailbox at any moment. Release builds compile the guard out.
#ifndef NDEBUG
#define PSF_MAILBOX_CONSUMER_GUARD() \
  ConsumerGuard psf_consumer_guard_ { consumers_ }
#else
#define PSF_MAILBOX_CONSUMER_GUARD() ((void)0)
#endif

/// Per-rank inbound message queue with (source, tag) matching, sharded by
/// source. Arrival order is preserved per (source, tag) — the MPI
/// non-overtaking guarantee — because one sender's deposits are sequential
/// and land in one FIFO queue. See the single-consumer contract above.
class Mailbox {
 public:
  /// Shard-count ceiling; more ranks than this share shards by modulo.
  static constexpr std::size_t kMaxShards = 16;

  /// `expected_sources` sizes the shard array (the World passes its rank
  /// count); correctness does not depend on it.
  explicit Mailbox(int expected_sources = 4)
      : shard_mask_(shard_count_for(expected_sources) - 1),
        shards_(shard_mask_ + 1) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueue a message (called by the sender thread).
  void deposit(Message message) {
    message.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    Shard& shard = shard_for(message.source);
    {
      std::lock_guard<std::mutex> guard(shard.mutex);
      shard.queues[Key{message.source, message.tag}].push_back(
          std::move(message));
      shard.pending += 1;
    }
    {
      std::lock_guard<std::mutex> guard(wait_mutex_);
      version_ += 1;
    }
    cv_.notify_one();
  }

  /// Enqueue two messages with the same (source, tag) as one atomic step.
  /// Fault injection uses this to deposit a message and its duplicate copy
  /// under a single shard lock: purge_duplicates relies on the copy sitting
  /// right behind the original, which only holds if no retrieve can slip in
  /// between the two deposits.
  void deposit_pair(Message first, Message second) {
    first.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    second.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    Shard& shard = shard_for(first.source);
    {
      std::lock_guard<std::mutex> guard(shard.mutex);
      auto& queue = shard.queues[Key{first.source, first.tag}];
      queue.push_back(std::move(first));
      queue.push_back(std::move(second));
      shard.pending += 2;
    }
    {
      std::lock_guard<std::mutex> guard(wait_mutex_);
      version_ += 1;
    }
    cv_.notify_one();
  }

  /// Receiver-side unpack of a coalesced frame (see FrameHeader): every
  /// sub-message becomes an individual queue entry with its own pooled
  /// payload, deposited under ONE shard lock (all subs share `source`, so
  /// they share a shard) with ONE wakeup — that single lock/notify per
  /// frame, instead of per message, is the receiving half of the
  /// coalescing win. Sub order is preserved and sequence numbers are
  /// assigned in sub order, so per-(source, tag) FIFO and wildcard
  /// earliest-deposit semantics match individual deposits exactly.
  ///
  /// `corrupt` delivers the fault injector's damaged copy of the frame:
  /// every sub keeps its original CRC but its payload is damaged (first
  /// byte flipped; empty payloads flip the CRC instead), so the receiver
  /// rejects each sub and the later clean retransmission is accepted —
  /// corrupting only part of the frame could let a stale retransmitted sub
  /// slip past the per-(source, tag) dedup backstop.
  void deposit_frame(int source, std::span<const std::byte> frame,
                     bool corrupt = false) {
    FrameHeader header;
    PSF_CHECK_MSG(frame.size() >= sizeof(header), "coalesced frame truncated");
    std::memcpy(&header, frame.data(), sizeof(header));
    std::vector<Message> staged;
    staged.reserve(header.count * 2);
    std::size_t offset = sizeof(header);
    for (std::uint32_t i = 0; i < header.count; ++i) {
      FrameSubHeader sub;
      PSF_CHECK_MSG(offset + sizeof(sub) <= frame.size(),
                    "coalesced frame sub-header out of bounds");
      std::memcpy(&sub, frame.data() + offset, sizeof(sub));
      offset += sizeof(sub);
      PSF_CHECK_MSG(offset + sub.bytes <= frame.size(),
                    "coalesced frame payload out of bounds");
      Message message;
      message.source = source;
      message.tag = sub.tag;
      message.arrival_vtime = sub.arrival_vtime;
      message.trace_span = sub.trace_span;
      message.crc = sub.crc;
      message.send_seq = sub.send_seq;
      message.payload = support::BufferPool::global().acquire(sub.bytes);
      if (sub.bytes > 0) {
        std::memcpy(message.payload.data(), frame.data() + offset, sub.bytes);
        if (corrupt) message.payload.data()[0] ^= std::byte{0xFF};
      } else if (corrupt) {
        message.crc = ~message.crc;
      }
      offset += sub.bytes;
      const bool duplicate = (sub.flags & kFrameSubDuplicate) != 0;
      if (duplicate) {
        Message copy;
        copy.source = message.source;
        copy.tag = message.tag;
        copy.arrival_vtime = message.arrival_vtime;
        copy.trace_span = message.trace_span;
        copy.crc = message.crc;
        copy.send_seq = message.send_seq;
        copy.payload =
            support::BufferPool::global().acquire(message.payload.size());
        if (!message.payload.empty()) {
          std::memcpy(copy.payload.data(), message.payload.data(),
                      message.payload.size());
        }
        staged.push_back(std::move(message));
        staged.push_back(std::move(copy));
      } else {
        staged.push_back(std::move(message));
      }
    }
    if (staged.empty()) return;
    for (Message& message : staged) {
      message.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    }
    Shard& shard = shard_for(source);
    {
      std::lock_guard<std::mutex> guard(shard.mutex);
      for (Message& message : staged) {
        shard.queues[Key{message.source, message.tag}].push_back(
            std::move(message));
      }
      shard.pending += staged.size();
    }
    {
      std::lock_guard<std::mutex> guard(wait_mutex_);
      version_ += 1;
    }
    cv_.notify_one();
  }

  /// Block until a message matching (source, tag) is available and return
  /// it. Wildcards kAnySource / kAnyTag match anything; among matches the
  /// earliest-deposited message wins.
  Message retrieve(int source, int tag) {
    PSF_MAILBOX_CONSUMER_GUARD();
    for (;;) {
      std::uint64_t version;
      {
        std::lock_guard<std::mutex> guard(wait_mutex_);
        version = version_;
      }
      Message message;
      if (try_retrieve(source, tag, message)) return message;
      std::unique_lock<std::mutex> lock(wait_mutex_);
      cv_.wait(lock, [&] { return version_ != version; });
    }
  }

  /// retrieve() with a wall-clock deadline: false if nothing matching
  /// arrived within `timeout_s` seconds. Virtual time is not advanced here
  /// — the deadline is a hang detector, not a priced operation.
  bool retrieve_for(int source, int tag, double timeout_s, Message& out) {
    PSF_MAILBOX_CONSUMER_GUARD();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
    for (;;) {
      std::uint64_t version;
      {
        std::lock_guard<std::mutex> guard(wait_mutex_);
        version = version_;
      }
      if (try_retrieve(source, tag, out)) return true;
      std::unique_lock<std::mutex> lock(wait_mutex_);
      if (!cv_.wait_until(lock, deadline,
                          [&] { return version_ != version; })) {
        lock.unlock();
        // One last look: the match may have landed between the snapshot
        // and the wait.
        return try_retrieve(source, tag, out);
      }
    }
  }

  /// Drop duplicated deliveries of the message just retrieved: pops
  /// consecutive front messages of the exact (source, tag) queue carrying
  /// the same sender sequence number. Duplicates are deposited back-to-back
  /// by the sender thread into one FIFO queue, so after the first copy is
  /// retrieved the remaining copies sit at the queue front. Returns how
  /// many were dropped.
  std::size_t purge_duplicates(int source, int tag, std::uint64_t send_seq) {
    if (send_seq == 0) return 0;
    Shard& shard = shard_for(source);
    std::lock_guard<std::mutex> guard(shard.mutex);
    auto it = shard.queues.find(Key{source, tag});
    if (it == shard.queues.end()) return 0;
    std::size_t purged = 0;
    while (!it->second.empty() && it->second.front().send_seq == send_seq) {
      it->second.pop_front();
      shard.pending -= 1;
      ++purged;
    }
    return purged;
  }

  /// Non-blocking probe: true if a matching message is queued.
  [[nodiscard]] bool probe(int source, int tag) {
    if (source != kAnySource) {
      Shard& shard = shard_for(source);
      std::lock_guard<std::mutex> guard(shard.mutex);
      return find_in_shard(shard, source, tag) != nullptr;
    }
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> guard(shard.mutex);
      if (find_in_shard(shard, source, tag) != nullptr) return true;
    }
    return false;
  }

  /// Number of queued messages (for tests / leak checks).
  [[nodiscard]] std::size_t pending() {
    std::size_t total = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> guard(shard.mutex);
      total += shard.pending;
    }
    return total;
  }

 private:
  using Key = std::pair<int, int>;  // (source, tag)

  struct Shard {
    std::mutex mutex;
    /// Per-(source, tag) FIFO queues. Drained queues are kept (not erased)
    /// so the steady state never re-allocates map nodes.
    std::map<Key, std::deque<Message>> queues;
    std::size_t pending = 0;
  };

  static std::size_t shard_count_for(int expected_sources) {
    std::size_t count = 1;
    const std::size_t want =
        expected_sources > 0 ? static_cast<std::size_t>(expected_sources) : 1;
    while (count < want && count < kMaxShards) count <<= 1;
    return count;
  }

  Shard& shard_for(int source) {
    return shards_[static_cast<std::size_t>(source) & shard_mask_];
  }

  /// Queue with the smallest front seq matching (source, tag) in `shard`,
  /// or nullptr. Caller holds shard.mutex.
  static std::deque<Message>* find_in_shard(Shard& shard, int source,
                                            int tag) {
    if (source != kAnySource && tag != kAnyTag) {
      auto it = shard.queues.find(Key{source, tag});
      if (it != shard.queues.end() && !it->second.empty()) return &it->second;
      return nullptr;
    }
    std::deque<Message>* best = nullptr;
    for (auto& [key, queue] : shard.queues) {
      if (queue.empty()) continue;
      if (source != kAnySource && key.first != source) continue;
      if (tag != kAnyTag && key.second != tag) continue;
      if (best == nullptr || queue.front().seq < best->front().seq) {
        best = &queue;
      }
    }
    return best;
  }

  bool try_retrieve(int source, int tag, Message& out) {
    if (source != kAnySource) {
      // Fast path: one shard, and for an exact tag one map lookup.
      Shard& shard = shard_for(source);
      std::lock_guard<std::mutex> guard(shard.mutex);
      std::deque<Message>* queue = find_in_shard(shard, source, tag);
      if (queue == nullptr) return false;
      out = std::move(queue->front());
      queue->pop_front();
      shard.pending -= 1;
      return true;
    }
    // Wildcard-source slow path: find the globally earliest match. Pass 1
    // records the best (shard, front-seq) per shard; pass 2 re-locks the
    // winning shard and pops. New deposits only ever carry larger seqs and
    // nobody else removes (single-consumer contract), so the winner is
    // still at the front of its queue in pass 2.
    for (;;) {
      Shard* best_shard = nullptr;
      std::uint64_t best_seq = 0;
      for (Shard& shard : shards_) {
        std::lock_guard<std::mutex> guard(shard.mutex);
        std::deque<Message>* queue = find_in_shard(shard, source, tag);
        if (queue == nullptr) continue;
        if (best_shard == nullptr || queue->front().seq < best_seq) {
          best_shard = &shard;
          best_seq = queue->front().seq;
        }
      }
      if (best_shard == nullptr) return false;
      std::lock_guard<std::mutex> guard(best_shard->mutex);
      std::deque<Message>* queue = find_in_shard(*best_shard, source, tag);
      PSF_CHECK_MSG(queue != nullptr && queue->front().seq == best_seq,
                    "mailbox wildcard winner vanished (single-consumer "
                    "contract violated)");
      out = std::move(queue->front());
      queue->pop_front();
      best_shard->pending -= 1;
      return true;
    }
  }

#ifndef NDEBUG
  struct ConsumerGuard {
    explicit ConsumerGuard(std::atomic<int>& count) : count_(count) {
      PSF_CHECK_MSG(count_.fetch_add(1, std::memory_order_acq_rel) == 0,
                    "mailbox single-consumer contract violated: a second "
                    "thread entered retrieve() concurrently");
    }
    ~ConsumerGuard() { count_.fetch_sub(1, std::memory_order_acq_rel); }
    ConsumerGuard(const ConsumerGuard&) = delete;
    ConsumerGuard& operator=(const ConsumerGuard&) = delete;
    std::atomic<int>& count_;
  };
  std::atomic<int> consumers_{0};
#endif

  const std::size_t shard_mask_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::mutex wait_mutex_;
  std::condition_variable cv_;
  std::uint64_t version_ = 0;
};

#undef PSF_MAILBOX_CONSUMER_GUARD

}  // namespace psf::minimpi
