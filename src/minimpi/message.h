// PSF — Pattern Specification Framework
// Message representation and matching queue (mailbox) for minimpi.
//
// minimpi is the in-process stand-in for MPI (see DESIGN.md §2): ranks are
// threads of one process, the transport is shared memory, and every message
// carries the sender's virtual departure time so the timemodel can charge
// realistic network costs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <vector>

#include "support/error.h"

namespace psf::minimpi {

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Completed-receive metadata (MPI_Status equivalent).
struct MessageInfo {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// An in-flight buffered message.
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  /// Virtual time at which the message arrives at the receiver (departure
  /// time + link cost), merged into the receiver's timeline on receipt.
  double arrival_vtime = 0.0;
  /// Trace span id of the send operation (0 when tracing is off), so the
  /// receive can record a send -> recv dependency edge.
  std::uint64_t trace_span = 0;
};

/// Per-rank inbound message queue with (source, tag) matching. Arrival order
/// is preserved, which yields the MPI non-overtaking guarantee for messages
/// on the same (source, tag).
class Mailbox {
 public:
  /// Enqueue a message (called by the sender thread).
  void deposit(Message message) {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      queue_.push_back(std::move(message));
    }
    cv_.notify_all();
  }

  /// Block until a message matching (source, tag) is available and return
  /// it. Wildcards kAnySource / kAnyTag match anything.
  Message retrieve(int source, int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (matches(*it, source, tag)) {
          Message message = std::move(*it);
          queue_.erase(it);
          return message;
        }
      }
      cv_.wait(lock);
    }
  }

  /// Non-blocking probe: true if a matching message is queued.
  [[nodiscard]] bool probe(int source, int tag) {
    std::lock_guard<std::mutex> guard(mutex_);
    for (const auto& message : queue_) {
      if (matches(message, source, tag)) return true;
    }
    return false;
  }

  /// Number of queued messages (for tests / leak checks).
  [[nodiscard]] std::size_t pending() {
    std::lock_guard<std::mutex> guard(mutex_);
    return queue_.size();
  }

 private:
  static bool matches(const Message& message, int source, int tag) {
    return (source == kAnySource || message.source == source) &&
           (tag == kAnyTag || message.tag == tag);
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::list<Message> queue_;
};

}  // namespace psf::minimpi
