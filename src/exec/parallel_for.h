// PSF — Pattern Specification Framework
// Work-stealing parallel_for over an exec::ThreadPool.
//
// The iteration space [0, count) is split into one contiguous range per
// participant (pool workers + the calling thread). Each participant claims
// indices from its own range; a participant whose range runs dry steals the
// upper half of the largest remaining range, so a skewed workload (a few
// slow indices) ends up balanced instead of serialized on one thread.
//
// Determinism note: WHICH thread runs an index is timing-dependent, so the
// pattern runtimes never accumulate state per worker — they accumulate per
// BLOCK (the index) and combine in fixed index order. See docs/EXECUTOR.md.
//
// Exceptions: the first exception thrown by `body` wins; remaining
// unstarted iterations are abandoned, in-flight ones finish, and the
// exception is rethrown on the calling thread. The pool stays usable.
#pragma once

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/thread_pool.h"
#include "support/metrics.h"
#include "support/sync.h"

namespace psf::exec {

namespace detail {

/// Shared state of one parallel_for invocation. Heap-held via shared_ptr:
/// straggler helper tasks may outlive the call (they find no work and
/// return, but must not touch freed memory).
struct ForState {
  struct Slot {
    support::SpinLock lock;
    // Atomics so the thief's victim scan may read sizes without the lock;
    // all modifications happen under `lock`.
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> end{0};

    [[nodiscard]] std::size_t left_relaxed() const noexcept {
      // next never exceeds end under the update rules, and both only move
      // towards each other, so this racy difference cannot underflow.
      const std::size_t hi = end.load(std::memory_order_relaxed);
      const std::size_t lo = next.load(std::memory_order_relaxed);
      return hi > lo ? hi - lo : 0;
    }
  };

  explicit ForState(std::size_t participants) : slots(participants) {}

  std::vector<Slot> slots;
  std::function<void(std::size_t)> body;
  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> cancelled{false};
  std::atomic<bool> done{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  /// Every claimed-or-abandoned index is accounted exactly once; the last
  /// account opens the done flag the caller is helping towards.
  void finish(std::size_t n) {
    if (n != 0 && remaining.fetch_sub(n, std::memory_order_acq_rel) == n) {
      done.store(true, std::memory_order_release);
    }
  }

  /// Abandon all unclaimed indices (first-exception-wins cancellation).
  void drain_all() {
    std::size_t abandoned = 0;
    for (auto& slot : slots) {
      std::lock_guard<support::SpinLock> guard(slot.lock);
      const std::size_t hi = slot.end.load(std::memory_order_relaxed);
      const std::size_t lo = slot.next.load(std::memory_order_relaxed);
      abandoned += hi - lo;
      slot.next.store(hi, std::memory_order_relaxed);
    }
    finish(abandoned);
  }

  /// Claim one index: from the participant's own range, else by stealing
  /// the upper half of the largest remaining range. Returns false when no
  /// work is left anywhere.
  bool claim(std::size_t self, std::size_t* index) {
    {
      auto& mine = slots[self];
      std::lock_guard<support::SpinLock> guard(mine.lock);
      const std::size_t lo = mine.next.load(std::memory_order_relaxed);
      if (lo < mine.end.load(std::memory_order_relaxed)) {
        mine.next.store(lo + 1, std::memory_order_relaxed);
        *index = lo;
        return true;
      }
    }
    for (;;) {
      // Lock-free size scan; the steal re-checks under the victim's lock.
      std::size_t victim = slots.size();
      std::size_t best = 0;
      for (std::size_t s = 0; s < slots.size(); ++s) {
        if (s == self) continue;
        const std::size_t left = slots[s].left_relaxed();
        if (left > best) {
          best = left;
          victim = s;
        }
      }
      if (victim == slots.size()) {
        // All ranges dry — this participant retires from the loop. This is
        // the one instrumentation point that can run AFTER another
        // participant finished the last index and released the caller, so
        // it must not touch an ambient per-job registry (it may already be
        // destroyed); the steal family records globally.
        PSF_METRIC_GLOBAL_ADD("exec.steal_failures", 1);
        return false;
      }
      auto& theirs = slots[victim];
      std::size_t lo = 0;
      std::size_t hi = 0;
      {
        std::lock_guard<support::SpinLock> guard(theirs.lock);
        const std::size_t t_next = theirs.next.load(std::memory_order_relaxed);
        const std::size_t t_end = theirs.end.load(std::memory_order_relaxed);
        if (t_next >= t_end) continue;  // lost the race; rescan
        // The thief's half [mid, t_end) must never be empty — we claim
        // `mid` unconditionally below. Rounding the split down means a
        // single remaining index goes to the thief (the owner may be a
        // still-queued task, so leaving it un-stealable could stall).
        const std::size_t mid = t_next + (t_end - t_next) / 2;
        lo = mid;
        hi = t_end;
        theirs.end.store(mid, std::memory_order_relaxed);
      }
      {
        auto& mine = slots[self];
        std::lock_guard<support::SpinLock> guard(mine.lock);
        mine.next.store(lo + 1, std::memory_order_relaxed);
        mine.end.store(hi, std::memory_order_relaxed);
      }
      // Same global routing as steal_failures so the family stays whole.
      // (This site is pinned by the just-claimed index — done cannot open
      // before this participant calls finish — but keeping both sites
      // lifetime-independent is cheaper than relying on that ordering.)
      PSF_METRIC_GLOBAL_ADD("exec.steals", 1);
      *index = lo;
      return true;
    }
  }

  /// Participant main loop: claim, run, account; first exception cancels.
  void run(std::size_t self) {
    std::size_t index = 0;
    while (claim(self, &index)) {
      if (!cancelled.load(std::memory_order_relaxed)) {
        try {
          body(index);
        } catch (...) {
          {
            std::lock_guard<std::mutex> guard(error_mutex);
            if (!error) error = std::current_exception();
          }
          cancelled.store(true, std::memory_order_relaxed);
          drain_all();
        }
      }
      finish(1);
    }
  }
};

}  // namespace detail

/// Run `body(i)` for i in [0, count) across `pool` with the caller
/// participating; see the header comment for the stealing and exception
/// contract. With a zero-worker pool this is an ascending serial loop —
/// the deterministic reference order every parallel run must reproduce.
inline void parallel_for(ThreadPool& pool, std::size_t count,
                         const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  PSF_METRIC_ADD("exec.parallel_for_calls", 1);
  PSF_METRIC_ADD("exec.parallel_for_items", count);
  if (!pool.concurrent() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  const std::size_t participants = std::min(pool.size() + 1, count);
  auto state = std::make_shared<detail::ForState>(participants);
  state->body = body;
  state->remaining.store(count, std::memory_order_relaxed);
  for (std::size_t p = 0; p < participants; ++p) {
    state->slots[p].next = count * p / participants;
    state->slots[p].end = count * (p + 1) / participants;
  }
  for (std::size_t p = 1; p < participants; ++p) {
    pool.submit([state, p] { state->run(p); });
  }
  state->run(0);
  // Help the pool until every index is accounted for: in-flight helpers may
  // still hold stolen ranges, and nested parallel_for tasks need a thread.
  pool.help_while(
      [&] { return state->done.load(std::memory_order_acquire); });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace psf::exec
