// PSF — Pattern Specification Framework
// psf::exec — the per-rank intra-node execution engine.
//
// One ThreadPool per rank backs every simulated device on that rank: device
// lanes produced by the schedulers run as pool tasks, and each device's
// block loop is a work-stealing parallel_for (see exec/parallel_for.h) over
// the same pool. The pool changes WALL-CLOCK behaviour only — virtual-time
// pricing stays on the calling rank thread and is bit-identical for any
// worker count (see docs/EXECUTOR.md for the determinism argument).
//
// A pool of N workers gives N+1-way concurrency: the thread that calls
// parallel_for (or waits on a Latch through help_while) participates by
// executing pending pool tasks instead of blocking. This "help while
// waiting" rule is what makes nested parallelism safe — a device-lane task
// that itself calls parallel_for on the same pool cannot deadlock, because
// every waiter drains the queue it is waiting on.
//
// A pool constructed with ZERO workers is the deterministic serial engine:
// submit() runs tasks inline and parallel_for degenerates to an ascending
// index loop on the caller. `EnvOptions::num_threads == 1` selects it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.h"

namespace psf::exec {

/// Fixed set of worker threads consuming a FIFO injection queue.
/// Thread-safe: any thread (including pool workers) may submit.
class ThreadPool {
 public:
  /// Spawn `num_workers` workers. 0 = inline serial execution.
  explicit ThreadPool(std::size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker thread count (concurrency is size() + 1 with the caller).
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// True when the pool actually runs tasks concurrently.
  [[nodiscard]] bool concurrent() const noexcept { return !workers_.empty(); }

  /// Enqueue a task; the future reports completion and re-throws anything
  /// the task threw. With zero workers the task runs inline before return.
  std::future<void> submit(std::function<void()> task);

  /// Pop and execute one pending task on the calling thread. Returns false
  /// when the queue is empty. Blocked waiters call this in a loop so that
  /// the work they are waiting on (or unrelated work) keeps flowing.
  bool try_run_pending_task();

  /// Help-while-wait: run pending tasks until `done()` returns true.
  /// Yields briefly when the queue is empty but `done()` still fails.
  void help_while(const std::function<bool()>& done);

  /// Run `body(i)` for every i in [0, count) with work stealing; the caller
  /// participates. Rethrows the first body exception after all in-flight
  /// iterations finished. With zero workers this is an ascending serial
  /// loop. Implemented in exec/parallel_for.h.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// Resolve an `EnvOptions::num_threads`-style request to a worker count
  /// for this pool (participants minus the calling thread):
  ///   PSF_THREADS env var (when set and > 0) overrides everything;
  ///   requested == 0 -> hardware_concurrency;
  ///   requested >= 1 -> that many participants (1 = serial = 0 workers).
  [[nodiscard]] static std::size_t resolve_workers(int requested);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace psf::exec
