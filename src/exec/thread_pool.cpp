#include "exec/thread_pool.h"

#include <cstdlib>
#include <string>

#include "exec/parallel_for.h"

namespace psf::exec {

ThreadPool::ThreadPool(std::size_t num_workers) {
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  // Tasks submitted after shutdown began (there should be none) and tasks
  // left in the queue are abandoned; their futures report broken promises.
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  PSF_CHECK_MSG(task != nullptr, "submitting an empty task");
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (workers_.empty()) {
    packaged();  // serial engine: run inline, deterministically
    return future;
  }
  {
    std::lock_guard<std::mutex> guard(mutex_);
    PSF_CHECK_MSG(!shutting_down_, "submit() on a shutting-down pool");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

bool ThreadPool::try_run_pending_task() {
  std::packaged_task<void()> task;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();  // exceptions land in the task's future, never escape here
  return true;
}

void ThreadPool::help_while(const std::function<bool()>& done) {
  while (!done()) {
    if (!try_run_pending_task()) {
      std::this_thread::yield();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  exec::parallel_for(*this, count, body);
}

std::size_t ThreadPool::resolve_workers(int requested) {
  if (const char* env = std::getenv("PSF_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) requested = parsed;
  }
  std::size_t threads;
  if (requested <= 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  } else {
    threads = static_cast<std::size_t>(requested);
  }
  return threads - 1;  // the calling rank thread is the extra participant
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down with nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace psf::exec
