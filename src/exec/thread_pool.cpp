#include "exec/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <string>

#include "exec/parallel_for.h"
#include "support/ambient.h"
#include "support/metrics.h"
#include "telemetry/prof.h"

namespace psf::exec {

namespace {

/// Execute one pool task (already wrapped by submit() with its submitter's
/// ambient context). Exceptions land in the task's future.
void run_task(std::packaged_task<void()>& task) { task(); }

}  // namespace

ThreadPool::ThreadPool(std::size_t num_workers) {
#ifndef PSF_DISABLE_METRICS
  // Pre-register the executor's counters so a metrics report always carries
  // the full exec.* family — the serial engine (0 workers) never submits
  // tasks or steals, and absent keys read as "not instrumented" rather
  // than "no events".
  auto& registry = metrics::Registry::current();
  registry.counter("exec.tasks_submitted");
  registry.counter("exec.tasks_executed");
  registry.counter("exec.steals");
  registry.counter("exec.steal_failures");
  registry.counter("exec.parallel_for_calls");
  registry.counter("exec.parallel_for_items");
#endif
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  // Tasks submitted after shutdown began (there should be none) and tasks
  // left in the queue are abandoned; their futures report broken promises.
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  PSF_CHECK_MSG(task != nullptr, "submitting an empty task");
  PSF_METRIC_ADD("exec.tasks_submitted", 1);
  // Wrap the task with the submitter's ambient context (per-job metrics
  // registry, fault log, job context) and the execution instrumentation.
  // Whatever thread ultimately runs it — a worker, a helping waiter from
  // another job, or the submitter inline — executes under the submitting
  // job's context, so attribution survives work stealing. Tasks are chunky
  // (a device lane, one parallel_for participant), so two clock reads per
  // task are noise.
  std::packaged_task<void()> packaged(
      [snapshot = support::ambient::Snapshot::capture(),
       body = std::move(task)] {
#ifndef PSF_DISABLE_METRICS
        const auto start = std::chrono::steady_clock::now();
#endif
        {
          const support::ambient::ScopedSnapshot scope(snapshot);
          // Default occupancy tag for the sampling profiler; pattern code
          // inside body() narrows it ("st.sweep", "gr.chunk", ...).
          PSF_PROF_SCOPE("exec.task");
          body();
        }
        // Executor stats record AFTER the submitter's scope is restored:
        // the last statement of body() may release a waiter (parallel_for's
        // latch), at which point the submitting job — and its registry —
        // may legally be destroyed. The stats land in this thread's own
        // routing instead (process-global on a pool worker), which is fine:
        // exec.* is the scheduling-dependent family, excluded from per-job
        // determinism comparisons anyway.
#ifndef PSF_DISABLE_METRICS
        PSF_METRIC_ADD("exec.tasks_executed", 1);
        PSF_METRIC_OBSERVE("exec.task_busy_wall",
                           std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count());
#endif
      });
  std::future<void> future = packaged.get_future();
  if (workers_.empty()) {
    run_task(packaged);  // serial engine: inline, deterministic
    return future;
  }
  {
    std::lock_guard<std::mutex> guard(mutex_);
    PSF_CHECK_MSG(!shutting_down_, "submit() on a shutting-down pool");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

bool ThreadPool::try_run_pending_task() {
  std::packaged_task<void()> task;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  // Exceptions land in the task's future, never escape here.
  run_task(task);
  return true;
}

void ThreadPool::help_while(const std::function<bool()>& done) {
  while (!done()) {
    if (!try_run_pending_task()) {
      std::this_thread::yield();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  exec::parallel_for(*this, count, body);
}

std::size_t ThreadPool::resolve_workers(int requested) {
  if (const char* env = std::getenv("PSF_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) requested = parsed;
  }
  std::size_t threads;
  if (requested <= 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  } else {
    threads = static_cast<std::size_t>(requested);
  }
  return threads - 1;  // the calling rank thread is the extra participant
}

void ThreadPool::worker_loop() {
#ifndef PSF_DISABLE_METRICS
  // Claim a profiler slot up front so idle workers appear in occupancy
  // reports (busy = 0) instead of being invisible until their first task.
  telemetry::prof::register_this_thread();
#endif
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down with nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task(task);
  }
}

}  // namespace psf::exec
