// PSF — Pattern Specification Framework
// Single-use countdown latch for the execution engine. Pattern runtimes
// pair it with ThreadPool::help_while: the rank thread launches device-lane
// tasks that count the latch down, overlaps its own work (e.g. the halo
// exchange), then helps the pool until the latch opens — never blocking
// while runnable tasks sit in the queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "support/error.h"

namespace psf::exec {

/// Counts down from an initial value; opens at zero. Single-use.
class Latch {
 public:
  explicit Latch(std::size_t count) : count_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  /// Decrement by `n`; opens the latch (and wakes waiters) at zero.
  void count_down(std::size_t n = 1) {
    std::lock_guard<std::mutex> guard(mutex_);
    PSF_CHECK_MSG(n <= count_, "latch counted below zero");
    count_ -= n;
    if (count_ == 0) cv_.notify_all();
  }

  /// Non-blocking check; true once the latch opened.
  [[nodiscard]] bool try_wait() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return count_ == 0;
  }

  /// Block until the latch opens. Prefer ThreadPool::help_while with
  /// try_wait when the counted work runs on the same pool.
  void wait() const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::size_t count_;
};

}  // namespace psf::exec
