// PSF — hand-written CUDA Kmeans baseline (Rodinia-style).
// Single-GPU implementation driven directly through the device simulator:
// points staged once in device memory, one assignment/accumulation kernel
// per iteration with per-block shared-memory accumulators, device-level
// atomic merge. This is the Figure 8 comparator.
#pragma once

#include <span>
#include <vector>

#include "apps/kmeans.h"

namespace psf::baselines::cuda_kmeans {

/// Hand-tuning advantage of the Rodinia kernel over the generic runtime
/// kernel (constant-memory centers, fused membership update); calibrated
/// so the framework lands ~6% behind (Fig. 8).
inline constexpr double kTunedSpeedup = 1.055;

struct Result {
  std::vector<double> centers;
  double vtime = 0.0;
};

Result run(const apps::kmeans::Params& params, std::span<const float> points,
           double workload_scale = 1.0);

}  // namespace psf::baselines::cuda_kmeans
