// PSF — hand-written MPI Heat3D baseline.
// Models the widely distributed MPI heat-equation code the paper compares
// against: one MPI process per core, 2-D (z, y) decomposition, blocking
// halo exchange, compute after exchange (no overlap), CPU only.
#pragma once

#include <span>
#include <vector>

#include "apps/heat3d.h"
#include "minimpi/communicator.h"

namespace psf::baselines::mpi_heat3d {

struct Result {
  std::vector<double> field;  ///< assembled global result
  double vtime = 0.0;
};

/// Run inside a World whose size is (nodes x cores-per-node). Collective.
Result run(minimpi::Communicator& comm, const apps::heat3d::Params& params,
           std::span<const double> field, double workload_scale = 1.0);

}  // namespace psf::baselines::mpi_heat3d
