// PSF — hand-written MPI Kmeans baseline.
// Models the widely distributed MPI kernel the paper compares against
// (one MPI process per CPU core, blocking collectives, CPU only). Written
// deliberately in classic rank-loop MPI style; the whole implementation is
// what the application developer must write without the framework.
#pragma once

#include <span>
#include <vector>

#include "apps/kmeans.h"
#include "minimpi/communicator.h"

namespace psf::baselines::mpi_kmeans {

struct Result {
  std::vector<double> centers;
  double vtime = 0.0;
};

/// Run inside a World whose size is (nodes x cores-per-node). Collective.
/// `workload_scale` prices the run at paper scale like the framework does.
Result run(minimpi::Communicator& comm, const apps::kmeans::Params& params,
           std::span<const float> points, double workload_scale = 1.0);

}  // namespace psf::baselines::mpi_kmeans
