#include "baselines/cuda_kmeans.h"

#include <cstring>

#include "devsim/device.h"
#include "timemodel/rates.h"
#include "timemodel/timeline.h"

namespace psf::baselines::cuda_kmeans {

// [psf-user-code-begin]
namespace {

using apps::kmeans::ClusterAccum;
using apps::kmeans::kDims;

// Per-block shared-memory accumulation followed by a device-atomic merge —
// the Rodinia kernel structure, written against the device simulator the
// way the CUDA original is written against the driver API.

}  // namespace

Result run(const apps::kmeans::Params& params, std::span<const float> points,
           double workload_scale) {
  timemodel::Timeline host;
  const auto preset = timemodel::testbed_preset();
  auto devices = devsim::make_node_devices(preset, host);
  devsim::Device& gpu = *devices[1];
  const auto rates = timemodel::app_rates("kmeans");
  gpu.set_compute_rate(rates.gpu_device_units_per_s(preset.cpu_parallel_eff) *
                       kTunedSpeedup);

  const int k = params.num_clusters;
  std::vector<double> centers = apps::kmeans::initial_centers(params, points);

  // Stage the points in device memory once (setup, excluded from timing,
  // exactly as the benchmark excludes its initial cudaMemcpy).
  auto device_points = gpu.alloc(points.size() * sizeof(float));
  PSF_CHECK(device_points.is_ok());
  std::memcpy(device_points.value().bytes().data(), points.data(),
              points.size() * sizeof(float));
  const float* staged =
      reinterpret_cast<const float*>(device_points.value().bytes().data());

  const double t0 = host.now();
  devsim::Stream& stream = gpu.stream(0);
  const int num_blocks = gpu.descriptor().compute_units * 4;

  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    // Device-level accumulators merged atomically by the blocks.
    std::vector<double> device_sums(static_cast<std::size_t>(k) * kDims, 0.0);
    std::vector<double> device_counts(static_cast<std::size_t>(k), 0.0);

    stream.launch(
        num_blocks, 0, static_cast<double>(params.num_points) * workload_scale,
        [&](const devsim::BlockContext& ctx) {
          // Block-local accumulation (models the shared-memory stage).
          std::vector<double> sums(static_cast<std::size_t>(k) * kDims, 0.0);
          std::vector<double> counts(static_cast<std::size_t>(k), 0.0);
          const std::size_t per_block =
              (params.num_points + static_cast<std::size_t>(ctx.num_blocks) -
               1) /
              static_cast<std::size_t>(ctx.num_blocks);
          const std::size_t begin =
              per_block * static_cast<std::size_t>(ctx.block_id);
          const std::size_t end =
              std::min(params.num_points, begin + per_block);
          for (std::size_t p = begin; p < end; ++p) {
            const float* point = staged + p * kDims;
            int best = 0;
            double best_dist = 0.0;
            for (int c = 0; c < k; ++c) {
              double dist = 0.0;
              for (int d = 0; d < kDims; ++d) {
                const double diff = static_cast<double>(point[d]) -
                                    centers[static_cast<std::size_t>(c) *
                                                kDims +
                                            static_cast<std::size_t>(d)];
                dist += diff * diff;
              }
              if (c == 0 || dist < best_dist) {
                best_dist = dist;
                best = c;
              }
            }
            for (int d = 0; d < kDims; ++d) {
              sums[static_cast<std::size_t>(best) * kDims +
                   static_cast<std::size_t>(d)] +=
                  static_cast<double>(point[d]);
            }
            counts[static_cast<std::size_t>(best)] += 1.0;
          }
          // Atomic merge into the device-level accumulators.
          for (std::size_t i = 0; i < sums.size(); ++i) {
            devsim::atomic_add(&device_sums[i], sums[i]);
          }
          for (std::size_t i = 0; i < counts.size(); ++i) {
            devsim::atomic_add(&device_counts[i], counts[i]);
          }
        });
    stream.synchronize();
    // Read back the small accumulator arrays and recompute the centers.
    host.advance(preset.pcie.cost(static_cast<std::size_t>(
        static_cast<double>((device_sums.size() + device_counts.size()) *
                            sizeof(double)))));
    for (int c = 0; c < k; ++c) {
      if (device_counts[static_cast<std::size_t>(c)] > 0.0) {
        for (int d = 0; d < kDims; ++d) {
          centers[static_cast<std::size_t>(c) * kDims +
                  static_cast<std::size_t>(d)] =
              device_sums[static_cast<std::size_t>(c) * kDims +
                          static_cast<std::size_t>(d)] /
              device_counts[static_cast<std::size_t>(c)];
        }
      }
    }
  }

  Result result;
  result.centers = std::move(centers);
  result.vtime = host.now() - t0;
  return result;
}
// [psf-user-code-end]

}  // namespace psf::baselines::cuda_kmeans
