#include "baselines/mpi_heat3d.h"

#include <algorithm>
#include <cstring>

#include "timemodel/rates.h"

namespace psf::baselines::mpi_heat3d {

// [psf-user-code-begin]
namespace {

// Hand-written application: explicit (z, y) process grid, explicit strided
// packing for the y-direction faces, blocking exchange, full-sub-grid
// compute after the exchange.

std::size_t block_begin(std::size_t total, int parts, int index) {
  const std::size_t base = total / static_cast<std::size_t>(parts);
  const std::size_t extra = total % static_cast<std::size_t>(parts);
  const std::size_t i = static_cast<std::size_t>(index);
  return i * base + std::min<std::size_t>(i, extra);
}

struct Decomp {
  int pz = 1, py = 1;
  int cz = 0, cy = 0;
  std::size_t nz = 0, ny = 0, nx = 0;
  std::size_t off_z = 0, off_y = 0;
  int up = -1, down = -1, north = -1, south = -1;
};

Decomp make_decomp(int rank, int size, std::size_t gz, std::size_t gy,
                   std::size_t gx) {
  Decomp decomp;
  int pz = 1;
  for (int f = 1; f * f <= size; ++f) {
    if (size % f == 0) pz = f;
  }
  int py = size / pz;
  if (pz < py) std::swap(pz, py);
  decomp.pz = pz;
  decomp.py = py;
  decomp.cz = rank / py;
  decomp.cy = rank % py;
  decomp.off_z = block_begin(gz, pz, decomp.cz);
  decomp.nz = block_begin(gz, pz, decomp.cz + 1) - decomp.off_z;
  decomp.off_y = block_begin(gy, py, decomp.cy);
  decomp.ny = block_begin(gy, py, decomp.cy + 1) - decomp.off_y;
  decomp.nx = gx;
  decomp.up = decomp.cz > 0 ? rank - py : -1;
  decomp.down = decomp.cz + 1 < pz ? rank + py : -1;
  decomp.north = decomp.cy > 0 ? rank - 1 : -1;
  decomp.south = decomp.cy + 1 < py ? rank + 1 : -1;
  return decomp;
}

}  // namespace

Result run(minimpi::Communicator& comm, const apps::heat3d::Params& params,
           std::span<const double> field, double workload_scale) {
  const int rank = comm.rank();
  const int size = comm.size();
  const Decomp decomp =
      make_decomp(rank, size, params.nx, params.ny, params.nz);
  // Padded local array: (nz+2) x (ny+2) x nx — x is never partitioned, so
  // only z and y need halos.
  const std::size_t pz = decomp.nz + 2;
  const std::size_t py = decomp.ny + 2;
  const std::size_t px = decomp.nx;
  auto at = [&](std::size_t z, std::size_t y, std::size_t x) {
    return (z * py + y) * px + x;
  };

  std::vector<double> in(pz * py * px, 0.0);
  for (std::size_t z = 0; z < pz; ++z) {
    for (std::size_t y = 0; y < py; ++y) {
      const long long gz = static_cast<long long>(decomp.off_z + z) - 1;
      const long long gy = static_cast<long long>(decomp.off_y + y) - 1;
      if (gz < 0 || gz >= static_cast<long long>(params.nx) || gy < 0 ||
          gy >= static_cast<long long>(params.ny)) {
        continue;
      }
      std::memcpy(&in[at(z, y, 0)],
                  &field[(static_cast<std::size_t>(gz) * params.ny +
                          static_cast<std::size_t>(gy)) *
                         params.nz],
                  px * sizeof(double));
    }
  }
  std::vector<double> out = in;

  const auto rates = timemodel::app_rates("heat3d");
  const double t0 = comm.timeline().now();
  constexpr int kTagZ = 401;
  constexpr int kTagY = 402;
  const std::size_t z_plane = py * px;  // contiguous z faces
  std::vector<double> y_send(pz * px);
  std::vector<double> y_recv(pz * px);

  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    // --- z faces: contiguous planes, blocking exchange ------------------
    if (decomp.up >= 0) {
      comm.send_span<double>(
          decomp.up, kTagZ,
          std::span<const double>(&in[at(1, 0, 0)], z_plane));
    }
    if (decomp.down >= 0) {
      comm.send_span<double>(
          decomp.down, kTagZ,
          std::span<const double>(&in[at(decomp.nz, 0, 0)], z_plane));
      comm.recv_span<double>(
          decomp.down, kTagZ,
          std::span<double>(&in[at(decomp.nz + 1, 0, 0)], z_plane));
    }
    if (decomp.up >= 0) {
      comm.recv_span<double>(decomp.up, kTagZ,
                             std::span<double>(&in[at(0, 0, 0)], z_plane));
    }

    // --- y faces: strided, explicit pack/unpack over full padded z ------
    if (decomp.north >= 0) {
      for (std::size_t z = 0; z < pz; ++z) {
        std::memcpy(&y_send[z * px], &in[at(z, 1, 0)], px * sizeof(double));
      }
      comm.send_span<double>(decomp.north, kTagY, y_send);
    }
    if (decomp.south >= 0) {
      for (std::size_t z = 0; z < pz; ++z) {
        std::memcpy(&y_send[z * px], &in[at(z, decomp.ny, 0)],
                    px * sizeof(double));
      }
      comm.send_span<double>(decomp.south, kTagY, y_send);
      comm.recv_span<double>(decomp.south, kTagY, y_recv);
      for (std::size_t z = 0; z < pz; ++z) {
        std::memcpy(&in[at(z, decomp.ny + 1, 0)], &y_recv[z * px],
                    px * sizeof(double));
      }
    }
    if (decomp.north >= 0) {
      comm.recv_span<double>(decomp.north, kTagY, y_recv);
      for (std::size_t z = 0; z < pz; ++z) {
        std::memcpy(&in[at(z, 0, 0)], &y_recv[z * px], px * sizeof(double));
      }
    }
    comm.timeline().advance(static_cast<double>(pz * px) * 8.0 * 4.0 *
                            workload_scale / 2.0e10);

    // --- compute the whole sub-grid after the exchange ------------------
    for (std::size_t z = 1; z <= decomp.nz; ++z) {
      for (std::size_t y = 1; y <= decomp.ny; ++y) {
        for (std::size_t x = 0; x < px; ++x) {
          const std::size_t gz = decomp.off_z + z - 1;
          const std::size_t gy = decomp.off_y + y - 1;
          if (gz == 0 || gz + 1 >= params.nx || gy == 0 ||
              gy + 1 >= params.ny || x == 0 || x + 1 >= px) {
            out[at(z, y, x)] = in[at(z, y, x)];  // fixed boundary
          } else {
            const double center = in[at(z, y, x)];
            const double neighbors = in[at(z - 1, y, x)] +
                                     in[at(z + 1, y, x)] +
                                     in[at(z, y - 1, x)] +
                                     in[at(z, y + 1, x)] +
                                     in[at(z, y, x - 1)] +
                                     in[at(z, y, x + 1)];
            out[at(z, y, x)] =
                center + params.alpha * (neighbors - 6.0 * center);
          }
        }
      }
    }
    comm.timeline().advance(static_cast<double>(decomp.nz * decomp.ny * px) *
                            workload_scale / rates.cpu_core_units_per_s);
    std::swap(in, out);
  }

  Result result;
  result.vtime = comm.timeline().now() - t0;
  result.field.assign(params.nx * params.ny * params.nz, 0.0);
  for (std::size_t z = 0; z < decomp.nz; ++z) {
    for (std::size_t y = 0; y < decomp.ny; ++y) {
      std::memcpy(&result.field[((decomp.off_z + z) * params.ny +
                                 decomp.off_y + y) *
                                params.nz],
                  &in[at(z + 1, y + 1, 0)], px * sizeof(double));
    }
  }
  comm.reduce<double>(result.field, 0, [](double& a, double b) { a += b; });
  comm.bcast(std::as_writable_bytes(std::span<double>(result.field)), 0);
  return result;
}
// [psf-user-code-end]

}  // namespace psf::baselines::mpi_heat3d
