#include "baselines/cuda_sobel.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "devsim/device.h"
#include "timemodel/rates.h"
#include "timemodel/timeline.h"

namespace psf::baselines::cuda_sobel {

// [psf-user-code-begin]
namespace {

float sobel_pixel(const float* in, std::size_t width, std::size_t y,
                  std::size_t x) {
  auto at = [&](std::size_t yy, std::size_t xx) {
    return in[yy * width + xx];
  };
  const float gx = at(y - 1, x + 1) + 2.0f * at(y, x + 1) +
                   at(y + 1, x + 1) - at(y - 1, x - 1) -
                   2.0f * at(y, x - 1) - at(y + 1, x - 1);
  const float gy = at(y + 1, x - 1) + 2.0f * at(y + 1, x) +
                   at(y + 1, x + 1) - at(y - 1, x - 1) -
                   2.0f * at(y - 1, x) - at(y - 1, x + 1);
  const float magnitude = std::sqrt(gx * gx + gy * gy);
  return magnitude > 255.0f ? 255.0f : magnitude;
}

}  // namespace

Result run(const apps::sobel::Params& params, std::span<const float> image,
           double workload_scale) {
  timemodel::Timeline host;
  const auto preset = timemodel::testbed_preset();
  auto devices = devsim::make_node_devices(preset, host);
  devsim::Device& gpu = *devices[1];
  const auto rates = timemodel::app_rates("sobel");
  gpu.set_compute_rate(rates.gpu_device_units_per_s(preset.cpu_parallel_eff) *
                       kTextureSpeedup);

  const std::size_t cells = params.height * params.width;
  auto front = gpu.alloc(cells * sizeof(float));
  auto back = gpu.alloc(cells * sizeof(float));
  PSF_CHECK(front.is_ok() && back.is_ok());
  std::memcpy(front.value().bytes().data(), image.data(),
              cells * sizeof(float));
  std::memcpy(back.value().bytes().data(), image.data(),
              cells * sizeof(float));

  const double t0 = host.now();
  devsim::Stream& stream = gpu.stream(0);
  const int num_blocks = gpu.descriptor().compute_units * 4;
  float* in = reinterpret_cast<float*>(front.value().bytes().data());
  float* out = reinterpret_cast<float*>(back.value().bytes().data());

  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    stream.launch(
        num_blocks, 0, static_cast<double>(cells) * workload_scale,
        [&, in, out](const devsim::BlockContext& ctx) {
          const std::size_t rows_per_block =
              (params.height + static_cast<std::size_t>(ctx.num_blocks) - 1) /
              static_cast<std::size_t>(ctx.num_blocks);
          const std::size_t begin =
              rows_per_block * static_cast<std::size_t>(ctx.block_id);
          const std::size_t end =
              std::min(params.height, begin + rows_per_block);
          for (std::size_t y = begin; y < end; ++y) {
            for (std::size_t x = 0; x < params.width; ++x) {
              if (y == 0 || y + 1 >= params.height || x == 0 ||
                  x + 1 >= params.width) {
                out[y * params.width + x] = in[y * params.width + x];
              } else {
                out[y * params.width + x] =
                    sobel_pixel(in, params.width, y, x);
              }
            }
          }
        });
    std::swap(in, out);
  }
  stream.synchronize();

  Result result;
  result.vtime = host.now() - t0;
  result.image.assign(cells, 0.0f);
  // Read the final frame back (excluded from timing, like the SDK sample's
  // display copy).
  std::memcpy(result.image.data(), in, cells * sizeof(float));
  return result;
}
// [psf-user-code-end]

}  // namespace psf::baselines::cuda_sobel
