// PSF — hand-written MPI MiniMD baseline.
// Models the Mantevo MPI implementation the paper compares against: one
// process per core, atom (block) decomposition, a blocking allgather of all
// positions each step (no communication/computation overlap), neighbor
// lists rebuilt on a fixed schedule, CPU only.
#pragma once

#include <span>
#include <vector>

#include "apps/minimd.h"
#include "minimpi/communicator.h"

namespace psf::baselines::mpi_minimd {

struct Result {
  double kinetic_energy = 0.0;
  double temperature = 0.0;
  double position_checksum = 0.0;
  std::size_t last_edge_count = 0;
  double vtime = 0.0;
};

/// Run inside a World with ONE rank per node: the Mantevo code is
/// MPI+OpenMP, one process per node with `omp_threads` worker threads.
/// `atoms` is the shared global array (the simulated input files).
Result run(minimpi::Communicator& comm, const apps::minimd::Params& params,
           std::span<apps::minimd::Atom> atoms, double workload_scale = 1.0,
           int omp_threads = 12);

}  // namespace psf::baselines::mpi_minimd
