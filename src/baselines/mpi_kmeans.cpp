#include "baselines/mpi_kmeans.h"

#include <algorithm>
#include <cstring>

#include "timemodel/rates.h"

namespace psf::baselines::mpi_kmeans {

// [psf-user-code-begin]
namespace {

// Everything below is the hand-written application: explicit partitioning,
// explicit local accumulation buffers, explicit global combination.

struct LocalSums {
  std::vector<double> sums;    // k * 3
  std::vector<double> counts;  // k
};

void assign_and_accumulate(const float* points, std::size_t begin,
                           std::size_t end, const std::vector<double>& centers,
                           int k, LocalSums* local) {
  for (std::size_t p = begin; p < end; ++p) {
    const float* point = points + p * 3;
    int best = 0;
    double best_dist = 0.0;
    for (int c = 0; c < k; ++c) {
      double dist = 0.0;
      for (int d = 0; d < 3; ++d) {
        const double diff =
            static_cast<double>(point[d]) - centers[c * 3 + d];
        dist += diff * diff;
      }
      if (c == 0 || dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    for (int d = 0; d < 3; ++d) {
      local->sums[static_cast<std::size_t>(best) * 3 +
                  static_cast<std::size_t>(d)] +=
          static_cast<double>(point[d]);
    }
    local->counts[static_cast<std::size_t>(best)] += 1.0;
  }
}

}  // namespace

Result run(minimpi::Communicator& comm, const apps::kmeans::Params& params,
           std::span<const float> points, double workload_scale) {
  const int rank = comm.rank();
  const int size = comm.size();
  const int k = params.num_clusters;

  // Manual block partition of the input points.
  const std::size_t total = params.num_points;
  const std::size_t base = total / static_cast<std::size_t>(size);
  const std::size_t extra = total % static_cast<std::size_t>(size);
  const std::size_t my_begin =
      static_cast<std::size_t>(rank) * base +
      std::min<std::size_t>(static_cast<std::size_t>(rank), extra);
  const std::size_t my_count =
      base + (static_cast<std::size_t>(rank) < extra ? 1 : 0);

  // Initial centers: the first k points, computed locally by every rank.
  std::vector<double> centers(static_cast<std::size_t>(k) * 3);
  for (int c = 0; c < k; ++c) {
    for (int d = 0; d < 3; ++d) {
      centers[static_cast<std::size_t>(c) * 3 + static_cast<std::size_t>(d)] =
          static_cast<double>(
              points[static_cast<std::size_t>(c) * 3 +
                     static_cast<std::size_t>(d)]);
    }
  }

  const auto rates = timemodel::app_rates("kmeans");
  const double t0 = comm.timeline().now();

  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    LocalSums local;
    local.sums.assign(static_cast<std::size_t>(k) * 3, 0.0);
    local.counts.assign(static_cast<std::size_t>(k), 0.0);
    assign_and_accumulate(points.data(), my_begin, my_begin + my_count,
                          centers, k, &local);
    comm.timeline().advance(static_cast<double>(my_count) * workload_scale /
                            rates.cpu_core_units_per_s);

    // Pack sums and counts into one buffer for a single Allreduce, the way
    // the distributed kernel does it.
    std::vector<double> packed(static_cast<std::size_t>(k) * 4);
    std::memcpy(packed.data(), local.sums.data(),
                local.sums.size() * sizeof(double));
    std::memcpy(packed.data() + static_cast<std::size_t>(k) * 3,
                local.counts.data(), local.counts.size() * sizeof(double));
    comm.allreduce<double>(packed, [](double& a, double b) { a += b; });

    for (int c = 0; c < k; ++c) {
      const double count = packed[static_cast<std::size_t>(k) * 3 +
                                  static_cast<std::size_t>(c)];
      if (count > 0.0) {
        for (int d = 0; d < 3; ++d) {
          centers[static_cast<std::size_t>(c) * 3 +
                  static_cast<std::size_t>(d)] =
              packed[static_cast<std::size_t>(c) * 3 +
                     static_cast<std::size_t>(d)] /
              count;
        }
      }
    }
  }

  Result result;
  result.centers = std::move(centers);
  result.vtime = comm.timeline().now() - t0;
  return result;
}
// [psf-user-code-end]

}  // namespace psf::baselines::mpi_kmeans
