#include "baselines/mpi_sobel.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "minimpi/cart.h"
#include "timemodel/rates.h"

namespace psf::baselines::mpi_sobel {

// [psf-user-code-begin]
namespace {

// Hand-written application code: explicit 2-D decomposition, explicit
// halo buffers, explicit pack/unpack, blocking exchange each iteration,
// stencil applied to the whole sub-grid after the exchange completes.

struct Decomp {
  int py = 1, px = 1;      // process grid
  int cy = 0, cx = 0;      // my coordinates
  std::size_t height = 0, width = 0;    // my interior extents
  std::size_t off_y = 0, off_x = 0;     // global offset of my interior
  int north = -1, south = -1, west = -1, east = -1;
};

std::size_t block_begin(std::size_t total, int parts, int index) {
  const std::size_t base = total / static_cast<std::size_t>(parts);
  const std::size_t extra = total % static_cast<std::size_t>(parts);
  const std::size_t i = static_cast<std::size_t>(index);
  return i * base + std::min<std::size_t>(i, extra);
}

Decomp make_decomp(int rank, int size, std::size_t height,
                   std::size_t width) {
  Decomp decomp;
  // Near-square process grid, tall side first.
  int py = 1;
  for (int f = 1; f * f <= size; ++f) {
    if (size % f == 0) py = f;
  }
  int px = size / py;
  if (py < px) std::swap(py, px);
  decomp.py = py;
  decomp.px = px;
  decomp.cy = rank / px;
  decomp.cx = rank % px;
  decomp.off_y = block_begin(height, py, decomp.cy);
  decomp.height = block_begin(height, py, decomp.cy + 1) - decomp.off_y;
  decomp.off_x = block_begin(width, px, decomp.cx);
  decomp.width = block_begin(width, px, decomp.cx + 1) - decomp.off_x;
  decomp.north = decomp.cy > 0 ? rank - px : -1;
  decomp.south = decomp.cy + 1 < py ? rank + px : -1;
  decomp.west = decomp.cx > 0 ? rank - 1 : -1;
  decomp.east = decomp.cx + 1 < px ? rank + 1 : -1;
  return decomp;
}

float sobel_pixel(const std::vector<float>& in, std::size_t stride,
                  std::size_t y, std::size_t x) {
  auto at = [&](std::size_t yy, std::size_t xx) {
    return in[yy * stride + xx];
  };
  const float gx = at(y - 1, x + 1) + 2.0f * at(y, x + 1) +
                   at(y + 1, x + 1) - at(y - 1, x - 1) -
                   2.0f * at(y, x - 1) - at(y + 1, x - 1);
  const float gy = at(y + 1, x - 1) + 2.0f * at(y + 1, x) +
                   at(y + 1, x + 1) - at(y - 1, x - 1) -
                   2.0f * at(y - 1, x) - at(y - 1, x + 1);
  const float magnitude = std::sqrt(gx * gx + gy * gy);
  return magnitude > 255.0f ? 255.0f : magnitude;
}

}  // namespace

Result run(minimpi::Communicator& comm, const apps::sobel::Params& params,
           std::span<const float> image, double workload_scale) {
  const int rank = comm.rank();
  const int size = comm.size();
  const Decomp decomp = make_decomp(rank, size, params.height, params.width);
  const std::size_t ph = decomp.height + 2;  // padded with 1-deep halo
  const std::size_t pw = decomp.width + 2;

  // Scatter my sub-grid (reading the shared input "file").
  std::vector<float> in(ph * pw, 0.0f);
  std::vector<float> out;
  for (std::size_t y = 0; y < ph; ++y) {
    for (std::size_t x = 0; x < pw; ++x) {
      const long long gy = static_cast<long long>(decomp.off_y + y) - 1;
      const long long gx = static_cast<long long>(decomp.off_x + x) - 1;
      if (gy >= 0 && gy < static_cast<long long>(params.height) && gx >= 0 &&
          gx < static_cast<long long>(params.width)) {
        in[y * pw + x] =
            image[static_cast<std::size_t>(gy) * params.width +
                  static_cast<std::size_t>(gx)];
      }
    }
  }
  out = in;

  const auto rates = timemodel::app_rates("sobel");
  const double t0 = comm.timeline().now();
  constexpr int kTagV = 301;
  constexpr int kTagH = 302;

  // Column buffers span the full padded height so that the second
  // (horizontal) exchange carries the halo rows just received vertically —
  // this propagates corner values for the 9-point stencil.
  std::vector<float> column_send(ph);
  std::vector<float> column_recv(ph);

  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    // --- blocking halo exchange: vertical (rows are contiguous) ----------
    if (decomp.north >= 0) {
      comm.send_span<float>(decomp.north, kTagV,
                            std::span<const float>(&in[1 * pw], pw));
    }
    if (decomp.south >= 0) {
      comm.send_span<float>(
          decomp.south, kTagV,
          std::span<const float>(&in[decomp.height * pw], pw));
      comm.recv_span<float>(decomp.south, kTagV,
                            std::span<float>(&in[(decomp.height + 1) * pw],
                                             pw));
    }
    if (decomp.north >= 0) {
      comm.recv_span<float>(decomp.north, kTagV,
                            std::span<float>(&in[0], pw));
    }

    // --- horizontal (columns are strided: explicit pack/unpack) ----------
    if (decomp.west >= 0) {
      for (std::size_t y = 0; y < ph; ++y) column_send[y] = in[y * pw + 1];
      comm.send_span<float>(decomp.west, kTagH, column_send);
    }
    if (decomp.east >= 0) {
      for (std::size_t y = 0; y < ph; ++y) {
        column_send[y] = in[y * pw + decomp.width];
      }
      comm.send_span<float>(decomp.east, kTagH, column_send);
      comm.recv_span<float>(decomp.east, kTagH, column_recv);
      for (std::size_t y = 0; y < ph; ++y) {
        in[y * pw + decomp.width + 1] = column_recv[y];
      }
    }
    if (decomp.west >= 0) {
      comm.recv_span<float>(decomp.west, kTagH, column_recv);
      for (std::size_t y = 0; y < ph; ++y) in[y * pw] = column_recv[y];
    }
    // Pack/unpack cost of the strided columns.
    comm.timeline().advance(static_cast<double>(decomp.height) * 4 * 4 *
                            workload_scale / 2.0e10);

    // --- compute the whole sub-grid after the exchange (no overlap) ------
    for (std::size_t y = 1; y <= decomp.height; ++y) {
      for (std::size_t x = 1; x <= decomp.width; ++x) {
        const std::size_t gy = decomp.off_y + y - 1;
        const std::size_t gx = decomp.off_x + x - 1;
        if (gy == 0 || gy + 1 >= params.height || gx == 0 ||
            gx + 1 >= params.width) {
          out[y * pw + x] = in[y * pw + x];  // fixed image border
        } else {
          out[y * pw + x] = sobel_pixel(in, pw, y, x);
        }
      }
    }
    comm.timeline().advance(static_cast<double>(decomp.height) *
                            static_cast<double>(decomp.width) *
                            workload_scale / rates.cpu_core_units_per_s);
    std::swap(in, out);
  }

  Result result;
  result.vtime = comm.timeline().now() - t0;

  // Assemble the distributed parts (excluded from timing).
  result.image.assign(params.height * params.width, 0.0f);
  for (std::size_t y = 0; y < decomp.height; ++y) {
    std::memcpy(&result.image[(decomp.off_y + y) * params.width +
                              decomp.off_x],
                &in[(y + 1) * pw + 1], decomp.width * sizeof(float));
  }
  comm.reduce<float>(result.image, 0, [](float& a, float b) { a += b; });
  comm.bcast(std::as_writable_bytes(std::span<float>(result.image)), 0);
  return result;
}
// [psf-user-code-end]

}  // namespace psf::baselines::mpi_sobel
