// PSF — hand-written CUDA Sobel baseline (NVIDIA SDK style).
// Single-GPU implementation driven directly through the device simulator.
// The SDK kernel stages the input through texture memory, an application-
// specific optimization the framework cannot apply (paper Section IV-E);
// it is modelled as a calibrated throughput advantage.
#pragma once

#include <span>
#include <vector>

#include "apps/sobel.h"

namespace psf::baselines::cuda_sobel {

/// Texture-staging advantage of the SDK kernel over the generic global-
/// memory kernel (calibrated so the framework lands ~15% behind, Fig. 8).
inline constexpr double kTextureSpeedup = 1.15;

struct Result {
  std::vector<float> image;
  double vtime = 0.0;
};

Result run(const apps::sobel::Params& params, std::span<const float> image,
           double workload_scale = 1.0);

}  // namespace psf::baselines::cuda_sobel
