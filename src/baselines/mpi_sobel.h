// PSF — hand-written MPI Sobel baseline.
// Models the UPC/GWU benchmark-suite style implementation the paper
// compares against: one MPI process per core, 2-D block decomposition,
// blocking halo exchange (no overlap, no tiling), CPU only.
#pragma once

#include <span>
#include <vector>

#include "apps/sobel.h"
#include "minimpi/communicator.h"

namespace psf::baselines::mpi_sobel {

struct Result {
  std::vector<float> image;  ///< assembled global result
  double vtime = 0.0;
};

/// Run inside a World whose size is (nodes x cores-per-node). Collective.
Result run(minimpi::Communicator& comm, const apps::sobel::Params& params,
           std::span<const float> image, double workload_scale = 1.0);

}  // namespace psf::baselines::mpi_sobel
