#include "baselines/mpi_minimd.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "timemodel/rates.h"

namespace psf::baselines::mpi_minimd {

// [psf-user-code-begin]
namespace {

// Hand-written application: explicit atom block decomposition, an explicit
// global position synchronization every step (allreduce-assembled, the
// simple hand-written approach), per-rank force and integration loops.

using apps::minimd::Atom;

std::size_t block_begin(std::size_t total, int parts, int index) {
  const std::size_t base = total / static_cast<std::size_t>(parts);
  const std::size_t extra = total % static_cast<std::size_t>(parts);
  const std::size_t i = static_cast<std::size_t>(index);
  return i * base + std::min<std::size_t>(i, extra);
}

// The baseline carries its own cell-binned neighbor-list builder, as the
// Mantevo code does.
std::vector<pattern::Edge> build_neighbors(const apps::minimd::Params& params,
                                           const std::vector<double>& pos) {
  const std::size_t n = pos.size() / 3;
  const double reach = params.cutoff + params.skin;
  // Per-dimension cell grid over the actual extents (elongated boxes,
  // drifting atoms).
  double lo[3] = {1e300, 1e300, 1e300};
  double hi[3] = {-1e300, -1e300, -1e300};
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], pos[i * 3 + static_cast<std::size_t>(d)]);
      hi[d] = std::max(hi[d], pos[i * 3 + static_cast<std::size_t>(d)]);
    }
  }
  std::size_t cells[3];
  for (int d = 0; d < 3; ++d) {
    cells[d] = std::max<std::size_t>(
        1, static_cast<std::size_t>((hi[d] - lo[d]) / reach));
  }
  auto cell_of = [&](std::size_t i, int d) {
    const double edge = (hi[d] - lo[d]) / static_cast<double>(cells[d]);
    auto c = static_cast<long long>(
        (pos[i * 3 + static_cast<std::size_t>(d)] - lo[d]) /
        std::max(edge, 1e-12));
    c = std::max<long long>(
        0, std::min<long long>(c, static_cast<long long>(cells[d]) - 1));
    return static_cast<std::size_t>(c);
  };
  auto cell_index = [&](std::size_t cx, std::size_t cy, std::size_t cz) {
    return (cx * cells[1] + cy) * cells[2] + cz;
  };
  std::vector<std::vector<std::uint32_t>> bins(cells[0] * cells[1] *
                                               cells[2]);
  for (std::size_t i = 0; i < n; ++i) {
    bins[cell_index(cell_of(i, 0), cell_of(i, 1), cell_of(i, 2))]
        .push_back(static_cast<std::uint32_t>(i));
  }
  const double reach2 = reach * reach;
  std::vector<pattern::Edge> edges;
  for (std::size_t cx = 0; cx < cells[0]; ++cx) {
    for (std::size_t cy = 0; cy < cells[1]; ++cy) {
      for (std::size_t cz = 0; cz < cells[2]; ++cz) {
        for (long long dx = -1; dx <= 1; ++dx) {
          for (long long dy = -1; dy <= 1; ++dy) {
            for (long long dz = -1; dz <= 1; ++dz) {
              const long long nx = static_cast<long long>(cx) + dx;
              const long long ny = static_cast<long long>(cy) + dy;
              const long long nz = static_cast<long long>(cz) + dz;
              if (nx < 0 || ny < 0 || nz < 0 ||
                  nx >= static_cast<long long>(cells[0]) ||
                  ny >= static_cast<long long>(cells[1]) ||
                  nz >= static_cast<long long>(cells[2])) {
                continue;
              }
              for (std::uint32_t i : bins[cell_index(cx, cy, cz)]) {
                for (std::uint32_t j :
                     bins[cell_index(static_cast<std::size_t>(nx),
                                     static_cast<std::size_t>(ny),
                                     static_cast<std::size_t>(nz))]) {
                  if (j <= i) continue;
                  double r2 = 0.0;
                  for (int d = 0; d < 3; ++d) {
                    const double delta = pos[i * 3 + d] - pos[j * 3 + d];
                    r2 += delta * delta;
                  }
                  if (r2 < reach2) edges.push_back({i, j});
                }
              }
            }
          }
        }
      }
    }
  }
  return edges;
}

bool lj_force(const double* a, const double* b, double cutoff2,
              double* force) {
  double delta[3];
  double r2 = 0.0;
  for (int d = 0; d < 3; ++d) {
    delta[d] = a[d] - b[d];
    r2 += delta[d] * delta[d];
  }
  if (r2 >= cutoff2 || r2 <= 1.0e-12) return false;
  const double inv_r2 = 1.0 / r2;
  const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
  const double magnitude = 24.0 * inv_r6 * (2.0 * inv_r6 - 1.0) * inv_r2;
  for (int d = 0; d < 3; ++d) force[d] = magnitude * delta[d];
  return true;
}

}  // namespace

Result run(minimpi::Communicator& comm, const apps::minimd::Params& params,
           std::span<apps::minimd::Atom> atoms, double workload_scale,
           int omp_threads) {
  const int rank = comm.rank();
  const int size = comm.size();
  const std::size_t n = atoms.size();
  const std::size_t my_begin = block_begin(n, size, rank);
  const std::size_t my_end = block_begin(n, size, rank + 1);
  const double cutoff2 = params.cutoff * params.cutoff;
  const auto rates = timemodel::app_rates("minimd");

  // Per-rank state: positions of ALL atoms (synchronized every step) and
  // velocities of MY atoms only.
  std::vector<double> positions(n * 3);
  std::vector<double> velocities((my_end - my_begin) * 3);
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d) positions[i * 3 + d] = atoms[i].pos[d];
  }
  for (std::size_t i = my_begin; i < my_end; ++i) {
    for (int d = 0; d < 3; ++d) {
      velocities[(i - my_begin) * 3 + d] = atoms[i].vel[d];
    }
  }

  // Neighbor list: every rank builds the global list and keeps the edges
  // touching its own atoms.
  std::vector<pattern::Edge> edges = build_neighbors(params, positions);

  // Ghost-exchange peer set: the owners of remote endpoints of my edges.
  auto owner_of = [&](std::size_t atom) {
    // Invert the block partition.
    int lo = 0;
    int hi = size - 1;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (atom < block_begin(n, size, mid + 1)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  };
  std::vector<int> peers;
  auto find_peers = [&]() {
    std::vector<bool> is_peer(static_cast<std::size_t>(size), false);
    for (const auto& edge : edges) {
      const bool u_mine = edge.u >= my_begin && edge.u < my_end;
      const bool v_mine = edge.v >= my_begin && edge.v < my_end;
      if (u_mine == v_mine) continue;  // both or neither
      is_peer[static_cast<std::size_t>(owner_of(u_mine ? edge.v : edge.u))] =
          true;
    }
    peers.clear();
    for (int p = 0; p < size; ++p) {
      if (is_peer[static_cast<std::size_t>(p)] && p != rank) {
        peers.push_back(p);
      }
    }
  };
  find_peers();
  constexpr int kGhostTag = 501;

  const double t0 = comm.timeline().now();
  std::vector<double> forces(n * 3);
  Result result;

  for (int iteration = 0; iteration < params.iterations; ++iteration) {
    if (iteration > 0 && params.rebuild_every > 0 &&
        iteration % params.rebuild_every == 0) {
      // Rebuild needs globally current positions: a collective sync, then
      // re-binning (each rank charges its share of the rebuild).
      std::vector<double> contribution(n * 3, 0.0);
      for (std::size_t i = my_begin * 3; i < my_end * 3; ++i) {
        contribution[i] = positions[i];
      }
      comm.allreduce<double>(contribution,
                             [](double& a, double b) { a += b; });
      positions = std::move(contribution);
      edges = build_neighbors(params, positions);
      find_peers();
      comm.timeline().advance(static_cast<double>(edges.size()) *
                              workload_scale / 1.0e8 /
                              static_cast<double>(size));
    }

    // Force pass over every edge with a local endpoint; only local atoms
    // accumulate (the remote endpoint's owner computes its own half).
    std::fill(forces.begin(), forces.end(), 0.0);
    std::size_t my_edges = 0;
    for (const auto& edge : edges) {
      const bool u_mine = edge.u >= my_begin && edge.u < my_end;
      const bool v_mine = edge.v >= my_begin && edge.v < my_end;
      if (!u_mine && !v_mine) continue;
      ++my_edges;
      double f[3];
      if (!lj_force(&positions[edge.u * 3], &positions[edge.v * 3], cutoff2,
                    f)) {
        continue;
      }
      if (u_mine) {
        for (int d = 0; d < 3; ++d) forces[edge.u * 3 + d] += f[d];
      }
      if (v_mine) {
        for (int d = 0; d < 3; ++d) forces[edge.v * 3 + d] -= f[d];
      }
    }
    // The force loop is OpenMP-parallel across the node's cores.
    comm.timeline().advance(static_cast<double>(my_edges) * workload_scale /
                            (rates.cpu_core_units_per_s *
                             static_cast<double>(omp_threads) * 11.0 / 12.0));

    // Integrate my atoms, then blocking ghost exchange: my whole block to
    // every edge-peer, their blocks into my copy (no overlap with compute,
    // unlike the framework).
    for (std::size_t i = my_begin; i < my_end; ++i) {
      for (int d = 0; d < 3; ++d) {
        velocities[(i - my_begin) * 3 + d] += forces[i * 3 + d] * params.dt;
        positions[i * 3 + d] +=
            velocities[(i - my_begin) * 3 + d] * params.dt;
      }
    }
    for (int p : peers) {
      comm.isend(p, kGhostTag,
                 std::as_bytes(std::span<const double>(
                     &positions[my_begin * 3], (my_end - my_begin) * 3)));
    }
    for (std::size_t i = 0; i < peers.size(); ++i) {
      auto message = comm.recv_any(minimpi::kAnySource, kGhostTag);
      const std::size_t src_begin = block_begin(n, size, message.source);
      std::memcpy(&positions[src_begin * 3], message.payload.data(),
                  message.payload.size());
    }
  }
  result.last_edge_count = edges.size();

  // Energy: local kinetic energy, combined with a scalar allreduce.
  double local_ke = 0.0;
  for (std::size_t i = my_begin; i < my_end; ++i) {
    double v2 = 0.0;
    for (int d = 0; d < 3; ++d) {
      const double v = velocities[(i - my_begin) * 3 + d];
      v2 += v * v;
    }
    local_ke += 0.5 * v2;
  }
  result.kinetic_energy = comm.allreduce_value<double>(
      local_ke, [](double& a, double b) { a += b; });
  result.temperature =
      2.0 * result.kinetic_energy / (3.0 * static_cast<double>(n));
  result.vtime = comm.timeline().now() - t0;

  // Final full sync (outside the timed region) for the checksum.
  std::vector<double> contribution(n * 3, 0.0);
  for (std::size_t i = my_begin * 3; i < my_end * 3; ++i) {
    contribution[i] = positions[i];
  }
  comm.allreduce<double>(contribution, [](double& a, double b) { a += b; });
  for (std::size_t i = 0; i < n * 3; ++i) {
    result.position_checksum += contribution[i];
  }
  return result;
}
// [psf-user-code-end]

}  // namespace psf::baselines::mpi_minimd
