// PSF — Pattern Specification Framework
// Simulated compute devices.
//
// The paper's framework drives a 12-core CPU plus one or more discrete Fermi
// GPUs per node. Here a Device is a functional simulator: device memory is
// host memory with capacity accounting, kernels execute for real on a small
// host thread pool (so the shared-memory-arena and atomic-update code paths
// are genuinely concurrent and testable), and every operation advances a
// virtual-time lane according to the calibrated cost model. Streams model
// CUDA streams: in-order per stream, asynchronous with respect to the host
// timeline until synchronized.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "support/buffer.h"
#include "support/error.h"
#include "support/metrics.h"
#include "support/sync.h"
#include "timemodel/link.h"
#include "timemodel/rates.h"
#include "timemodel/timeline.h"
#include "timemodel/trace.h"

namespace psf::devsim {

enum class DeviceType : std::uint8_t {
  kCpu,  ///< the node's multi-core host CPU
  kGpu,  ///< discrete CUDA-class GPU
  kMic,  ///< Intel MIC (Xeon Phi) coprocessor — the paper's future-work
         ///< target: x86 many-core over PCIe, no SM shared memory
};

/// Static description of one device.
struct DeviceDescriptor {
  DeviceType type = DeviceType::kCpu;
  int id = 0;  ///< index within the node (0 = CPU, 1.. = GPUs)
  int compute_units = 12;  ///< CPU cores or GPU SMs
  std::size_t memory_bytes = std::size_t{6} * 1024 * 1024 * 1024;
  /// Per-SM on-chip memory; Fermi default 48 KB shared / 16 KB L1.
  std::size_t shared_memory_per_sm = 48 * 1024;
  /// Host<->device link (PCIe); meaningless for the CPU device.
  timemodel::LinkModel h2d_link = timemodel::LinkModel::pcie();

  [[nodiscard]] std::string name() const {
    const char* prefix = type == DeviceType::kCpu   ? "cpu"
                         : type == DeviceType::kGpu ? "gpu"
                                                    : "mic";
    return prefix + std::to_string(id);
  }
};

/// cudaFuncCachePreferShared / PreferL1 equivalent: the stencil runtime
/// flips GPUs to PreferL1 (16 KB shared / 48 KB L1), reductions use
/// PreferShared (48 KB shared) — paper Section III-E.
enum class CachePreference : std::uint8_t { kPreferShared, kPreferL1 };

class Device;

/// RAII allocation in a device's memory space. Backed by host memory; the
/// byte size counts against the device's simulated capacity.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(DeviceBuffer&&) noexcept;
  DeviceBuffer& operator=(DeviceBuffer&&) noexcept;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer();

  [[nodiscard]] std::span<std::byte> bytes() noexcept {
    return storage_.bytes();
  }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return storage_.bytes();
  }
  template <typename T>
  [[nodiscard]] std::span<T> as() noexcept {
    return storage_.as<T>();
  }
  template <typename T>
  [[nodiscard]] std::span<const T> as() const noexcept {
    return storage_.as<T>();
  }
  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] bool empty() const noexcept { return storage_.empty(); }

 private:
  friend class Device;
  DeviceBuffer(Device* owner, std::size_t bytes);
  void release() noexcept;

  Device* owner_ = nullptr;
  support::AlignedBuffer storage_;
};

/// Host "pinned" (page-locked, zero-copy mappable) buffer. Device kernels
/// may read/write it directly, as the paper's boundary-packing kernels do
/// with host-mapped memory.
class PinnedBuffer {
 public:
  PinnedBuffer() = default;
  explicit PinnedBuffer(std::size_t bytes) : storage_(bytes) {}

  void resize(std::size_t bytes) { storage_.resize(bytes); }
  [[nodiscard]] std::span<std::byte> bytes() noexcept {
    return storage_.bytes();
  }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return storage_.bytes();
  }
  template <typename T>
  [[nodiscard]] std::span<T> as() noexcept {
    return storage_.as<T>();
  }
  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }

 private:
  support::AlignedBuffer storage_;
};

/// Execution context handed to each simulated thread block. `shared` is the
/// block's slice of SM shared memory (or a scratch arena on the CPU device,
/// where it models the per-core private reduction object).
struct BlockContext {
  int block_id = 0;
  int num_blocks = 1;
  std::span<std::byte> shared;
};

/// One simulated device. Thread-compatible: a single host thread (the
/// device's controlling CPU thread, as in the paper) drives it.
class Device {
 public:
  /// `executor` is the rank's shared execution engine backing run_blocks;
  /// when null (direct construction in tests / standalone use) the device
  /// owns a small private pool so block execution stays concurrent.
  Device(DeviceDescriptor descriptor, timemodel::Timeline& host,
         exec::ThreadPool* executor = nullptr);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceDescriptor& descriptor() const noexcept {
    return descriptor_;
  }
  [[nodiscard]] DeviceType type() const noexcept { return descriptor_.type; }
  [[nodiscard]] bool is_gpu() const noexcept {
    return descriptor_.type == DeviceType::kGpu;
  }
  /// Discrete accelerator behind a PCIe link (GPU or MIC): work must be
  /// shipped to it and a host thread controls it.
  [[nodiscard]] bool is_accelerator() const noexcept {
    return descriptor_.type != DeviceType::kCpu;
  }

  // --- memory ---------------------------------------------------------------

  /// Allocate `bytes` of device memory; Status error when the simulated
  /// capacity is exhausted.
  support::StatusOr<DeviceBuffer> alloc(std::size_t bytes);

  [[nodiscard]] std::size_t memory_in_use() const noexcept {
    return memory_in_use_;
  }

  /// Usable shared memory per SM under the current cache preference.
  [[nodiscard]] std::size_t usable_shared_memory() const noexcept;

  void set_cache_preference(CachePreference preference) noexcept {
    cache_preference_ = preference;
  }
  [[nodiscard]] CachePreference cache_preference() const noexcept {
    return cache_preference_;
  }

  // --- execution ------------------------------------------------------------

  /// Application-specific throughput (work units per second) used to price
  /// kernels; configured by the pattern runtime from timemodel::AppRates.
  void set_compute_rate(double units_per_s) noexcept {
    PSF_CHECK(units_per_s > 0.0);
    units_per_s_ = units_per_s;
  }
  [[nodiscard]] double compute_rate() const noexcept { return units_per_s_; }

  [[nodiscard]] double kernel_cost(double work_units) const noexcept {
    return overheads_.kernel_launch_s + work_units / units_per_s_;
  }

  void set_overheads(const timemodel::Overheads& overheads) noexcept {
    overheads_ = overheads;
  }

  /// Run `body(ctx)` for each of `num_blocks` blocks, each with a private
  /// `shared_bytes` arena, on the device's worker pool. Functional execution
  /// only — virtual time is charged separately through streams or lanes.
  ///
  /// Device loss (fault plans, docs/RESILIENCE.md): when a loss is armed
  /// via fail_at(), the fatal launch aborts before ANY block runs — a real
  /// device's kernel output is unretrievable after the device is lost — and
  /// the device stays lost; every later launch is a no-op. Callers must
  /// check lost()/status() after launching and re-execute the launch with
  /// host_replay(). This all-or-nothing semantic is what makes replay safe:
  /// a launch either fully happened or left no trace.
  void run_blocks(int num_blocks, std::size_t shared_bytes,
                  const std::function<void(const BlockContext&)>& body);

  // --- simulated device loss ------------------------------------------------

  /// Arm a device loss: the `nth_launch`-th subsequent non-empty run_blocks
  /// launch aborts (executing nothing) and marks the device lost.
  void fail_at(int nth_launch) noexcept {
    PSF_CHECK_MSG(nth_launch >= 1, "fail_at needs a launch index >= 1");
    fail_countdown_ = nth_launch;
  }

  [[nodiscard]] bool lost() const noexcept { return lost_; }

  /// kDeviceLost once the device died, OK otherwise.
  [[nodiscard]] support::Status status() const {
    return lost_ ? support::Status::device_lost(
                       descriptor_.name() + ": simulated device loss")
                 : support::Status::ok();
  }

  /// Re-run a launch that a lost device discarded, on the host worker pool.
  /// The launch must be idempotent (block bodies reset their private state
  /// on entry — the contract every pattern runtime upholds and GReduction
  /// asserts); replaying it then reproduces the fault-free bytes exactly.
  void host_replay(int num_blocks, std::size_t shared_bytes,
                   const std::function<void(const BlockContext&)>& body);

  /// Clear the lost state and any armed countdown (test helper).
  void restore() noexcept {
    lost_ = false;
    fail_countdown_ = -1;
  }

  /// The owning rank, used to key fault-log events deterministically even
  /// when tracing is off (RuntimeEnv sets it; set_trace also updates it).
  void set_owner_rank(int rank) noexcept { trace_rank_ = rank; }

  /// Attach a schedule recorder: stream operations (async copies, kernel
  /// launches) record spans on (rank, lane) and copy -> kernel dependency
  /// edges, so psf::analysis sees the transfer/compute pipeline. Not owned;
  /// must outlive the device.
  void set_trace(timemodel::TraceRecorder* trace, int rank, int lane) {
    trace_ = trace;
    trace_rank_ = rank;
    trace_lane_ = lane;
    if (trace_ != nullptr) {
      trace_->set_lane_name(rank, lane, descriptor_.name());
    }
  }

  /// Stream handles (created lazily; the paper's runtime uses two per GPU).
  class Stream& stream(int index);
  [[nodiscard]] int num_streams() const noexcept {
    return static_cast<int>(streams_.size());
  }
  /// Merge every stream's lane into `host` (cudaDeviceSynchronize).
  void synchronize_all(timemodel::Timeline& host);

 private:
  friend class DeviceBuffer;
  friend class Stream;
  friend class StreamPipeline;

  /// The shared launch machinery behind run_blocks and host_replay.
  void run_blocks_impl(int num_blocks, std::size_t shared_bytes,
                       const std::function<void(const BlockContext&)>& body);

  DeviceDescriptor descriptor_;
  timemodel::Timeline* host_;
  timemodel::Overheads overheads_;
  CachePreference cache_preference_ = CachePreference::kPreferShared;
  double units_per_s_ = 1.0e7;
  std::size_t memory_in_use_ = 0;
  exec::ThreadPool* pool_;  ///< rank executor, or owned_pool_ fallback
  std::unique_ptr<exec::ThreadPool> owned_pool_;
  /// Persistent per-worker block arenas, reused (grow-only) across
  /// run_blocks launches so steady-state kernels allocate nothing.
  std::vector<support::AlignedBuffer> arenas_;
  std::vector<std::size_t> free_arena_slots_;
  support::SpinLock arena_lock_;
  std::size_t arena_bytes_ = 0;
  std::vector<std::unique_ptr<Stream>> streams_;
  /// Simulated device-loss state: countdown of non-empty launches until the
  /// armed loss fires (-1/0 = disarmed), and whether the device is dead.
  int fail_countdown_ = -1;
  bool lost_ = false;
  timemodel::TraceRecorder* trace_ = nullptr;
  int trace_rank_ = 0;
  int trace_lane_ = 0;

  // Per-device instruments, looked up once (name-keyed, e.g.
  // "devsim.gpu1.busy_vtime") so stream hot paths pay one atomic op.
  metrics::Counter* metric_kernel_launches_ = nullptr;
  metrics::Counter* metric_block_launches_ = nullptr;
  metrics::Timer* metric_busy_vtime_ = nullptr;
  metrics::Counter* metric_h2d_bytes_ = nullptr;
  metrics::Counter* metric_d2h_bytes_ = nullptr;
};

/// Cross-stream synchronization marker (cudaEvent model): records a point
/// in one stream's virtual timeline that other streams or the host can
/// wait on.
class Event {
 public:
  [[nodiscard]] bool recorded() const noexcept { return recorded_; }
  [[nodiscard]] double timestamp() const noexcept { return timestamp_; }

  /// Block the host until the event's work completed (cudaEventSynchronize).
  void synchronize(timemodel::Timeline& host) const {
    PSF_CHECK_MSG(recorded_, "synchronizing an unrecorded event");
    host.merge(timestamp_);
  }

 private:
  friend class Stream;
  double timestamp_ = 0.0;
  bool recorded_ = false;
};

/// In-order asynchronous work queue on a device (CUDA stream model).
/// Operations execute functionally at enqueue time (valid because each
/// stream's consumers are ordered and the runtimes keep streams disjoint),
/// while the virtual-time lane records when they would complete.
class Stream {
 public:
  Stream(Device& device, timemodel::Timeline& host)
      : device_(&device), host_(&host) {}

  /// Asynchronous host-to-device copy (functional memcpy + PCIe pricing).
  void copy_h2d(std::span<std::byte> dst, std::span<const std::byte> src);
  /// Asynchronous device-to-host copy.
  void copy_d2h(std::span<std::byte> dst, std::span<const std::byte> src);
  /// Peer device-to-device copy (cudaMemcpyPeerAsync); both stream lanes
  /// advance, concurrent bi-directional transfers do not serialize.
  void copy_peer(std::span<std::byte> dst, Stream& peer,
                 std::span<const std::byte> src,
                 const timemodel::LinkModel& link);

  /// Launch a kernel: run `num_blocks` blocks functionally and charge
  /// kernel_cost(work_units) on this stream's lane.
  void launch(int num_blocks, std::size_t shared_bytes, double work_units,
              const std::function<void(const BlockContext&)>& body);

  /// Charge an already-priced cost on this lane without executing anything
  /// (used when the runtime prices a composite operation itself).
  void charge(double seconds);

  /// Pricing-only H2D transfer: advance the lane by the PCIe cost of
  /// `bytes`, count them, and record an "h2d copy" span. No functional copy
  /// happens (the caller's data is already host-resident in the simulator).
  /// Returns the trace span id (0 when tracing is off). Unlike copy_h2d the
  /// span is NOT queued for this stream's next launch — the caller wires
  /// the copy -> kernel edge itself (StreamPipeline does, across streams).
  std::uint64_t charge_h2d(std::size_t bytes);

  /// Pricing-only kernel: advance the lane by an already-priced `seconds`,
  /// count a launch, and record a compute span named `name`. Returns the
  /// span id (0 when tracing is off).
  std::uint64_t charge_kernel(double seconds, const char* name = "kernel");

  /// Record the stream's current position into `event` (cudaEventRecord).
  void record(Event& event) {
    event.timestamp_ = lane_;
    event.recorded_ = true;
  }

  /// Make this stream wait for `event` (cudaStreamWaitEvent): subsequent
  /// work starts no earlier than the recorded point.
  void wait(const Event& event) {
    PSF_CHECK_MSG(event.recorded_, "waiting on an unrecorded event");
    lane_ = std::max(lane_, event.timestamp_);
  }

  /// Block the host until the stream drains (merges lane into host time).
  void synchronize();

  [[nodiscard]] double lane_time() const noexcept { return lane_; }
  /// The controlling host timeline's current time (enqueue lower bound).
  [[nodiscard]] double host_now() const noexcept { return host_->now(); }
  [[nodiscard]] Device& device() noexcept { return *device_; }

 private:
  /// Async ops begin no earlier than their enqueue time on the host.
  double begin() noexcept;

  /// Record a span for a stream op on the owning device's trace lane;
  /// returns 0 when tracing is off.
  std::uint64_t trace_op(const char* name, const char* category,
                         double op_begin, double op_end);

  Device* device_;
  timemodel::Timeline* host_;
  double lane_ = 0.0;
  /// Copy spans since the last kernel launch — each becomes a copy ->
  /// kernel "stream" edge when the next launch records.
  std::vector<std::uint64_t> pending_copy_spans_;
};

/// Double-buffered copy/compute pipeline over two streams (the paper's
/// two-pinned-blocks-per-chunk GPU execution, III-D; CUDA's canonical
/// ping-pong staging). Stage k's H2D copy lands in staging slot k % 2, so
/// it can start as soon as the kernel that consumed that slot two stages
/// ago finished — the copy of stage k+1 overlaps the kernel of stage k.
///
/// Pricing-only: step() advances the device's copy and compute stream lanes
/// (charge_h2d / charge_kernel) and records the copy -> kernel "stream"
/// dependency edge, so psf-analyze sees the transfer/compute pipeline and
/// the reclaimed idle time. The copy time that executes concurrently with
/// kernel execution accumulates into the "devsim.copy_overlap_vtime" timer.
/// Functional work stays wherever the caller runs it (run_blocks).
///
/// Streams `copy_stream`/`compute_stream` of the device are used in-order;
/// the pipeline may be re-entered across iterations (lanes are monotonic
/// and begin() never lets an op start before host time).
class StreamPipeline {
 public:
  explicit StreamPipeline(Device& device, int copy_stream = 0,
                          int compute_stream = 1)
      : copy_(&device.stream(copy_stream)),
        compute_(&device.stream(compute_stream)) {}

  /// Price one pipelined stage: an H2D copy of `bytes` feeding a kernel of
  /// already-priced `compute_s` seconds. Returns the stage's completion
  /// (kernel end) time on the compute lane.
  double step(std::size_t bytes, double compute_s,
              const char* kernel_name = "kernel");

  /// Charge host-side per-stage overhead (e.g. chunk acquisition) on the
  /// copy lane: it gates when the next transfer can be enqueued.
  void charge_acquire(double seconds) { copy_->charge(seconds); }

  /// Completion time of all work issued so far (max of both lanes).
  [[nodiscard]] double finish() const noexcept {
    return std::max(copy_->lane_time(), compute_->lane_time());
  }

  /// Copy seconds that ran concurrently with kernel execution so far —
  /// the idle time double buffering reclaimed versus a serial schedule.
  [[nodiscard]] double overlap_vtime() const noexcept {
    return overlap_vtime_;
  }

  /// cudaDeviceSynchronize for the pipeline: merge both lanes into `host`.
  void drain(timemodel::Timeline& host) {
    host.merge(copy_->lane_time());
    host.merge(compute_->lane_time());
  }

 private:
  Stream* copy_;
  Stream* compute_;
  /// Ping-pong staging: kernel-done event per slot (copy into a slot waits
  /// for the kernel that last consumed it) and copy-done per slot (the
  /// kernel waits for its input transfer).
  Event slot_free_[2];
  Event copy_done_[2];
  int slot_ = 0;
  /// Execution interval of the previous stage's kernel, for overlap
  /// accounting against the current stage's copy.
  double prev_kernel_begin_ = 0.0;
  double prev_kernel_end_ = 0.0;
  bool have_prev_kernel_ = false;
  double overlap_vtime_ = 0.0;
};

/// Atomic read-modify-write on device data shared between simulated blocks.
template <typename T>
T atomic_add(T* address, T value) noexcept {
  std::atomic_ref<T> ref(*address);
  return ref.fetch_add(value, std::memory_order_relaxed);
}

/// The device set of one node: devices[0] is the multi-core CPU, devices
/// [1..gpus] are GPUs, then preset.mics_per_node MIC coprocessors, per the
/// testbed preset.
std::vector<std::unique_ptr<Device>> make_node_devices(
    const timemodel::ClusterPreset& preset, timemodel::Timeline& host,
    std::size_t gpu_memory_bytes = std::size_t{6} * 1024 * 1024 * 1024,
    exec::ThreadPool* executor = nullptr);

}  // namespace psf::devsim
