#include "devsim/device.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>

#include "fault/fault.h"
#include "support/sync.h"
#include "telemetry/prof.h"

namespace psf::devsim {

namespace {
/// Host worker threads per device. The simulation host may have few cores;
/// a small pool still exercises concurrent block execution (atomics, arena
/// isolation) without oversubscribing the machine.
constexpr std::size_t kMaxHostWorkers = 4;
}  // namespace

// --- DeviceBuffer -----------------------------------------------------------

DeviceBuffer::DeviceBuffer(Device* owner, std::size_t bytes)
    : owner_(owner), storage_(bytes) {}

DeviceBuffer::DeviceBuffer(DeviceBuffer&& other) noexcept
    : owner_(std::exchange(other.owner_, nullptr)),
      storage_(std::move(other.storage_)) {}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    release();
    owner_ = std::exchange(other.owner_, nullptr);
    storage_ = std::move(other.storage_);
  }
  return *this;
}

DeviceBuffer::~DeviceBuffer() { release(); }

void DeviceBuffer::release() noexcept {
  if (owner_ != nullptr) {
    owner_->memory_in_use_ -= storage_.size();
    owner_ = nullptr;
  }
  storage_.resize(0);
}

// --- Device -----------------------------------------------------------------

Device::Device(DeviceDescriptor descriptor, timemodel::Timeline& host,
               exec::ThreadPool* executor)
    : descriptor_(descriptor), host_(&host), pool_(executor) {
  PSF_CHECK_MSG(descriptor_.compute_units > 0,
                "device needs at least one compute unit");
  if (pool_ == nullptr) {
    // Directly-constructed device (no rank executor): own a small pool so
    // block execution still exercises concurrency.
    const std::size_t workers = std::min<std::size_t>(
        kMaxHostWorkers, static_cast<std::size_t>(descriptor_.compute_units));
    owned_pool_ = std::make_unique<exec::ThreadPool>(workers);
    pool_ = owned_pool_.get();
  }
#ifndef PSF_DISABLE_METRICS
  auto& registry = metrics::Registry::current();
  const std::string prefix = "devsim." + descriptor_.name() + ".";
  metric_kernel_launches_ = &registry.counter(prefix + "kernel_launches");
  metric_block_launches_ = &registry.counter(prefix + "block_launches");
  metric_busy_vtime_ = &registry.timer(prefix + "busy_vtime");
  metric_h2d_bytes_ = &registry.counter(prefix + "h2d_bytes");
  metric_d2h_bytes_ = &registry.counter(prefix + "d2h_bytes");
#endif
}

Device::~Device() = default;

support::StatusOr<DeviceBuffer> Device::alloc(std::size_t bytes) {
  if (memory_in_use_ + bytes > descriptor_.memory_bytes) {
    return support::Status::resource_exhausted(
        descriptor_.name() + ": allocation of " + std::to_string(bytes) +
        " bytes exceeds capacity (" + std::to_string(memory_in_use_) + "/" +
        std::to_string(descriptor_.memory_bytes) + " in use)");
  }
  memory_in_use_ += bytes;
  return DeviceBuffer(this, bytes);
}

std::size_t Device::usable_shared_memory() const noexcept {
  // Fermi on-chip memory is 64 KB split 48/16 between shared memory and L1
  // depending on the cache preference (paper Section III-E).
  if (!is_gpu()) return descriptor_.shared_memory_per_sm;
  constexpr std::size_t kOnChip = 64 * 1024;
  return cache_preference_ == CachePreference::kPreferShared
             ? kOnChip - 16 * 1024
             : kOnChip - 48 * 1024;
}

void Device::run_blocks(
    int num_blocks, std::size_t shared_bytes,
    const std::function<void(const BlockContext&)>& body) {
  PSF_CHECK(num_blocks >= 0);
  if (num_blocks == 0) return;
  if (lost_) return;  // a dead device executes nothing; see host_replay()
  if (fail_countdown_ > 0 && --fail_countdown_ == 0) {
    // Armed loss fires: the launch aborts before any block runs (its
    // output would be unretrievable from a lost device anyway) and the
    // device is dead from here on. The caller recovers via host_replay().
    lost_ = true;
    PSF_METRIC_ADD("fault.device_losses", 1);
    if (fault::FaultLog::current().enabled()) {
      fault::FaultLog::current().record(
          trace_rank_, "device_loss " + descriptor_.name());
    }
    return;
  }
  run_blocks_impl(num_blocks, shared_bytes, body);
}

void Device::host_replay(
    int num_blocks, std::size_t shared_bytes,
    const std::function<void(const BlockContext&)>& body) {
  PSF_CHECK_MSG(lost_, "host_replay on a healthy device");
  PSF_CHECK(num_blocks >= 0);
  if (num_blocks == 0) return;
  PSF_METRIC_ADD("fault.host_replays", 1);
  run_blocks_impl(num_blocks, shared_bytes, body);
}

void Device::run_blocks_impl(
    int num_blocks, std::size_t shared_bytes,
    const std::function<void(const BlockContext&)>& body) {
  PSF_CHECK_MSG(shared_bytes <= usable_shared_memory(),
                descriptor_.name() << ": block requests " << shared_bytes
                                   << " bytes of shared memory, only "
                                   << usable_shared_memory() << " usable");
#ifndef PSF_DISABLE_METRICS
  metric_block_launches_->add(static_cast<std::uint64_t>(num_blocks));
#endif
  // Each concurrent worker gets its own arena; blocks reuse arenas as they
  // are scheduled, exactly like SMs reuse shared memory across blocks. The
  // arenas persist across launches (grow-only), so the per-iteration kernel
  // launches of a steady-state run allocate nothing; a single controlling
  // host thread drives the device, so resizing here is race-free. Blocks
  // zero their slice before use, which keeps reuse semantically fresh.
  const std::size_t concurrency = pool_->size() + 1;
  if (arenas_.size() != concurrency || arena_bytes_ < shared_bytes) {
    arenas_.resize(concurrency);
    arena_bytes_ = std::max(arena_bytes_, shared_bytes);
    for (auto& arena : arenas_) {
      if (arena.size() < arena_bytes_) arena.resize(arena_bytes_);
    }
  }
  // Arena checkout stack: at most `concurrency` blocks run at once, so a
  // popped arena is exclusively owned until the block finishes. parallel_for
  // joins before returning, so the stack is full again on the next launch.
  free_arena_slots_.resize(concurrency);
  for (std::size_t i = 0; i < concurrency; ++i) free_arena_slots_[i] = i;

  pool_->parallel_for(
      static_cast<std::size_t>(num_blocks), [&](std::size_t block) {
        PSF_PROF_SCOPE("dev.block");
        std::size_t slot;
        {
          std::lock_guard<support::SpinLock> guard(arena_lock_);
          PSF_CHECK_MSG(!free_arena_slots_.empty(), "arena pool underflow");
          slot = free_arena_slots_.back();
          free_arena_slots_.pop_back();
        }
        auto& arena = arenas_[slot];
        if (shared_bytes > 0) std::memset(arena.data(), 0, shared_bytes);
        BlockContext ctx;
        ctx.block_id = static_cast<int>(block);
        ctx.num_blocks = num_blocks;
        ctx.shared = arena.bytes().first(shared_bytes);
        body(ctx);
        {
          std::lock_guard<support::SpinLock> guard(arena_lock_);
          free_arena_slots_.push_back(slot);
        }
      });
}

Stream& Device::stream(int index) {
  PSF_CHECK(index >= 0 && index < 64);
  while (static_cast<int>(streams_.size()) <= index) {
    streams_.push_back(std::make_unique<Stream>(*this, *host_));
  }
  return *streams_[static_cast<std::size_t>(index)];
}

void Device::synchronize_all(timemodel::Timeline& host) {
  for (auto& stream : streams_) {
    host.merge(stream->lane_time());
  }
}

// --- Stream -----------------------------------------------------------------

double Stream::begin() noexcept {
  // An async op cannot start before it is enqueued (host time) nor before
  // the stream's previous op finished (in-order streams).
  lane_ = std::max(lane_, host_->now());
  return lane_;
}

std::uint64_t Stream::trace_op(const char* name, const char* category,
                               double op_begin, double op_end) {
  if (device_->trace_ == nullptr) return 0;
  return device_->trace_->record(name, category, device_->trace_rank_,
                                 device_->trace_lane_, op_begin, op_end);
}

void Stream::copy_h2d(std::span<std::byte> dst,
                      std::span<const std::byte> src) {
  PSF_CHECK_MSG(dst.size() >= src.size(), "copy_h2d destination too small");
  const double op_begin = begin();
  std::memcpy(dst.data(), src.data(), src.size());
  lane_ += device_->descriptor().h2d_link.cost(src.size());
#ifndef PSF_DISABLE_METRICS
  device_->metric_h2d_bytes_->add(src.size());
#endif
  if (const auto span = trace_op("h2d copy", "copy", op_begin, lane_)) {
    pending_copy_spans_.push_back(span);
  }
}

void Stream::copy_d2h(std::span<std::byte> dst,
                      std::span<const std::byte> src) {
  PSF_CHECK_MSG(dst.size() >= src.size(), "copy_d2h destination too small");
  const double op_begin = begin();
  std::memcpy(dst.data(), src.data(), src.size());
  lane_ += device_->descriptor().h2d_link.cost(src.size());
#ifndef PSF_DISABLE_METRICS
  device_->metric_d2h_bytes_->add(src.size());
#endif
  if (const auto span = trace_op("d2h copy", "copy", op_begin, lane_)) {
    pending_copy_spans_.push_back(span);
  }
}

void Stream::copy_peer(std::span<std::byte> dst, Stream& peer,
                       std::span<const std::byte> src,
                       const timemodel::LinkModel& link) {
  PSF_CHECK_MSG(dst.size() >= src.size(), "copy_peer destination too small");
  begin();
  peer.begin();
  std::memcpy(dst.data(), src.data(), src.size());
  // Both endpoints are busy for the duration; bi-directional transfers on
  // the PCIe bus proceed concurrently (cudaMemcpyPeerAsync semantics).
  const double done = std::max(lane_, peer.lane_) + link.cost(src.size());
  lane_ = done;
  peer.lane_ = done;
}

void Stream::launch(int num_blocks, std::size_t shared_bytes,
                    double work_units,
                    const std::function<void(const BlockContext&)>& body) {
  const double op_begin = begin();
  device_->run_blocks(num_blocks, shared_bytes, body);
  const double cost = device_->kernel_cost(work_units);
  lane_ += cost;
#ifndef PSF_DISABLE_METRICS
  device_->metric_kernel_launches_->add(1);
  device_->metric_busy_vtime_->observe(cost);
#endif
  if (const auto span = trace_op("kernel", "compute", op_begin, lane_)) {
    // In-order stream: the kernel consumes whatever the preceding copies
    // staged on the device.
    for (const auto copy : pending_copy_spans_) {
      device_->trace_->record_edge(copy, span, "stream");
    }
    pending_copy_spans_.clear();
  }
}

void Stream::charge(double seconds) {
  PSF_CHECK(seconds >= 0.0);
  begin();
  lane_ += seconds;
#ifndef PSF_DISABLE_METRICS
  device_->metric_busy_vtime_->observe(seconds);
#endif
}

std::uint64_t Stream::charge_h2d(std::size_t bytes) {
  const double op_begin = begin();
  lane_ += device_->descriptor().h2d_link.cost(bytes);
#ifndef PSF_DISABLE_METRICS
  device_->metric_h2d_bytes_->add(bytes);
#endif
  return trace_op("h2d copy", "copy", op_begin, lane_);
}

std::uint64_t Stream::charge_kernel(double seconds, const char* name) {
  PSF_CHECK(seconds >= 0.0);
  const double op_begin = begin();
  lane_ += seconds;
#ifndef PSF_DISABLE_METRICS
  device_->metric_kernel_launches_->add(1);
  device_->metric_busy_vtime_->observe(seconds);
#endif
  const auto span = trace_op(name, "compute", op_begin, lane_);
  if (span != 0) {
    for (const auto copy : pending_copy_spans_) {
      device_->trace_->record_edge(copy, span, "stream");
    }
    pending_copy_spans_.clear();
  }
  return span;
}

void Stream::synchronize() { host_->merge(lane_); }

// --- StreamPipeline ---------------------------------------------------------

double StreamPipeline::step(std::size_t bytes, double compute_s,
                            const char* kernel_name) {
  // The copy reuses staging slot `slot_`: it cannot start before the kernel
  // that last consumed this slot released the buffer.
  if (slot_free_[slot_].recorded()) copy_->wait(slot_free_[slot_]);
  const double copy_begin =
      std::max(copy_->lane_time(), copy_->host_now());
  const std::uint64_t copy_span = copy_->charge_h2d(bytes);
  const double copy_end = copy_->lane_time();
  copy_->record(copy_done_[slot_]);

  // Overlap accounting: the part of this copy that executed while the
  // PREVIOUS stage's kernel was running is time a serial schedule would
  // have spent idle on the copy engine.
  if (have_prev_kernel_) {
    const double overlap = std::min(copy_end, prev_kernel_end_) -
                           std::max(copy_begin, prev_kernel_begin_);
    if (overlap > 0.0) {
      overlap_vtime_ += overlap;
      PSF_METRIC_OBSERVE("devsim.copy_overlap_vtime", overlap);
    }
  }

  compute_->wait(copy_done_[slot_]);
  const double kernel_begin =
      std::max(compute_->lane_time(), compute_->host_now());
  const std::uint64_t kernel_span =
      compute_->charge_kernel(compute_s, kernel_name);
  compute_->record(slot_free_[slot_]);
  if (copy_span != 0 && kernel_span != 0) {
    // Cross-stream edge: the kernel consumes the bytes this copy staged.
    compute_->device().trace_->record_edge(copy_span, kernel_span, "stream");
  }
  prev_kernel_begin_ = kernel_begin;
  prev_kernel_end_ = compute_->lane_time();
  have_prev_kernel_ = true;
  slot_ ^= 1;
  return prev_kernel_end_;
}

// --- node factory -----------------------------------------------------------

std::vector<std::unique_ptr<Device>> make_node_devices(
    const timemodel::ClusterPreset& preset, timemodel::Timeline& host,
    std::size_t gpu_memory_bytes, exec::ThreadPool* executor) {
  std::vector<std::unique_ptr<Device>> devices;
  DeviceDescriptor cpu;
  cpu.type = DeviceType::kCpu;
  cpu.id = 0;
  cpu.compute_units = preset.cpu_cores_per_node;
  cpu.memory_bytes = std::size_t{47} * 1024 * 1024 * 1024;
  cpu.shared_memory_per_sm = 256 * 1024;  // models per-core L2 working set
  devices.push_back(std::make_unique<Device>(cpu, host, executor));
  devices.back()->set_overheads(preset.overheads);

  for (int g = 0; g < preset.gpus_per_node; ++g) {
    DeviceDescriptor gpu;
    gpu.type = DeviceType::kGpu;
    gpu.id = g + 1;
    gpu.compute_units = 14;  // M2070: 14 SMs
    gpu.memory_bytes = gpu_memory_bytes;
    gpu.shared_memory_per_sm = 48 * 1024;
    gpu.h2d_link = preset.pcie;
    devices.push_back(std::make_unique<Device>(gpu, host, executor));
    devices.back()->set_overheads(preset.overheads);
  }
  for (int m = 0; m < preset.mics_per_node; ++m) {
    // Knights-Corner-class coprocessor: many small x86 cores, regular
    // caches (no SM shared memory), data shipped over PCIe like a GPU.
    DeviceDescriptor mic;
    mic.type = DeviceType::kMic;
    mic.id = preset.gpus_per_node + m + 1;
    mic.compute_units = 60;
    mic.memory_bytes = std::size_t{8} * 1024 * 1024 * 1024;
    mic.shared_memory_per_sm = 512 * 1024;  // per-core L2 working set
    mic.h2d_link = preset.pcie;
    devices.push_back(std::make_unique<Device>(mic, host, executor));
    devices.back()->set_overheads(preset.overheads);
  }
  return devices;
}

}  // namespace psf::devsim
